#include "linalg/shard_pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "linalg/simd/kernels.hpp"
#include "obs/obs.hpp"
#include "resilience/fault.hpp"

namespace socmix::linalg {

namespace {

namespace adjc = graph::sharded::adjc;

[[noreturn]] void corrupt(const char* what) {
  // Decode-time fail-closed: reachable when load-time CRC verification
  // was skipped (Options{verify = false}) yet the stream is damaged.
  SOCMIX_COUNTER_ADD("graph.io.smxg_rejected", 1);
  throw std::runtime_error{std::string{"smxg: corrupt ADJC "} + what};
}

}  // namespace

const char* io_mode_name(IoMode mode) noexcept {
  switch (mode) {
    case IoMode::kSync:
      return "sync";
    case IoMode::kPrefetch:
      return "prefetch";
  }
  return "unknown";
}

std::optional<IoMode> parse_io_mode(std::string_view name) noexcept {
  if (name.empty() || name == "sync") return IoMode::kSync;
  if (name == "prefetch") return IoMode::kPrefetch;
  return std::nullopt;
}

ShardPipeline::ShardPipeline(const graph::Graph& g, graph::ShardPlan plan,
                             const graph::sharded::MappedGraph* mapped, IoMode mode)
    : graph_(&g), mapped_(mapped), plan_(std::move(plan)), mode_(mode) {
  compressed_ = g.headless();
  if (compressed_ && (mapped_ == nullptr || !mapped_->compressed())) {
    throw std::invalid_argument{
        "ShardPipeline: a headless graph needs its compressed MappedGraph"};
  }
  if (compressed_) {
    // Size both scratch slots for the worst shard now, so staging never
    // allocates: the largest group-aligned value span and row count any
    // shard's window covers.
    const auto& view = mapped_->adjc_view();
    const auto offsets = graph_->offsets();
    const graph::NodeId n = graph_->num_nodes();
    std::size_t max_values = 0;
    std::size_t max_rows = 0;
    for (std::uint32_t s = 0; s < plan_.num_shards(); ++s) {
      const graph::NodeId lo = plan_.begin(s);
      const graph::NodeId hi = plan_.end(s);
      if (lo >= hi) continue;
      const auto gs_row = static_cast<graph::NodeId>(view.group_of_row(lo) *
                                                     view.group_rows);
      const graph::NodeId ge_row = std::min<graph::NodeId>(
          n, static_cast<graph::NodeId>((view.group_of_row(hi - 1) + 1) *
                                        view.group_rows));
      max_values = std::max<std::size_t>(max_values, offsets[ge_row] - offsets[gs_row]);
      max_rows = std::max<std::size_t>(max_rows, hi - lo);
    }
    for (Slot& slot : slots_) {
      slot.values.reserve(max_values);
      slot.offsets.reserve(max_rows + 1);
    }
    scratch_bytes_ = 2 * (max_values * sizeof(graph::NodeId) +
                          (max_rows + 1) * sizeof(graph::EdgeIndex));
    SOCMIX_GAUGE_SET("markov.shard.scratch_bytes", scratch_bytes_);
  }
  // A worker only earns its keep when staging does real work: paging a
  // mapping in, or decoding. A plain in-memory graph stays synchronous,
  // and so does a single-hardware-thread host — there the "worker" could
  // only time-slice against compute, turning overlap into pure context-
  // switch overhead (kernel readahead still overlaps the device side).
  threaded_ = mode_ == IoMode::kPrefetch && (mapped_ != nullptr || compressed_) &&
              plan_.num_shards() > 0 && std::thread::hardware_concurrency() > 1;
  if (threaded_) {
    request_ = 0;
    worker_ = std::thread{[this] { worker_main(); }};
  }
}

ShardPipeline::~ShardPipeline() {
  if (worker_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }
}

void ShardPipeline::worker_main() {
  for (;;) {
    std::int64_t s = -1;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      cv_.wait(lock, [this] { return stop_ || request_ >= 0; });
      if (stop_) return;
      s = request_;
      request_ = -1;
      staging_ = s;
    }
    std::exception_ptr error;
    try {
      stage(static_cast<std::uint32_t>(s));
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      staging_ = -1;
      ready_ = s;
      if (error) error_ = error;
    }
    cv_.notify_all();
  }
}

void ShardPipeline::stage(std::uint32_t s) {
  SOCMIX_TRACE_SPAN("shard.prefetch_fill");
  const graph::NodeId lo = plan_.begin(s);
  const graph::NodeId hi = plan_.end(s);
  std::size_t bytes = 0;
  if (compressed_) {
    if (mapped_ != nullptr) {
      mapped_->advise_rows(lo, hi);
      bytes = mapped_->window_bytes(lo, hi);
    }
    // The decode streams every compressed byte of the window, so it *is*
    // the blocking read — no separate page touching needed.
    decode_window(s, slots_[s % 2]);
  } else if (mapped_ != nullptr) {
    bytes = mapped_->prefetch_rows(lo, hi);
  }
  SOCMIX_COUNTER_ADD("markov.shard.prefetch_issued", 1);
  SOCMIX_COUNTER_ADD("markov.shard.prefetch_bytes", bytes);
}

void ShardPipeline::decode_window(std::uint32_t s, Slot& slot) {
  const graph::NodeId lo = plan_.begin(s);
  const graph::NodeId hi = plan_.end(s);
  slot.begin = lo;
  slot.end = hi;
  const std::size_t rows = hi - lo;
  slot.offsets.resize(rows + 1);
  if (rows == 0) {
    slot.offsets[0] = 0;
    slot.values.clear();
    return;
  }
  const adjc::AdjcView& view = mapped_->adjc_view();
  const auto offsets = graph_->offsets();
  const graph::NodeId n = graph_->num_nodes();
  const std::uint64_t g_lo = view.group_of_row(lo);
  const std::uint64_t g_hi = view.group_of_row(hi - 1) + 1;
  const auto gs_row = static_cast<graph::NodeId>(g_lo * view.group_rows);
  const graph::EdgeIndex scratch_base = offsets[gs_row];
  for (std::size_t j = 0; j <= rows; ++j) {
    slot.offsets[j] = offsets[lo + j] - scratch_base;
  }

  const auto ge_row =
      std::min<graph::NodeId>(n, static_cast<graph::NodeId>(g_hi * view.group_rows));
  slot.values.resize(offsets[ge_row] - scratch_base);
  const simd::DecodeU32Fn decode = simd::dispatch().decode_u32;
  graph::NodeId* out = slot.values.data();
  for (std::uint64_t g = g_lo; g < g_hi; ++g) {
    const auto r0 = static_cast<graph::NodeId>(g * view.group_rows);
    const graph::NodeId r1 =
        std::min<graph::NodeId>(n, static_cast<graph::NodeId>(r0 + view.group_rows));
    const std::size_t count = offsets[r1] - offsets[r0];
    const std::uint64_t stream_lo = view.group_offsets[g];
    const std::uint64_t stream_hi = view.group_offsets[g + 1];
    const std::size_t ctrl_bytes = (count + 3) / 4;
    if (stream_hi - stream_lo < ctrl_bytes) corrupt("group stream (too short)");
    const std::uint8_t* ctrl = view.base + stream_lo;
    // Sum the coded lengths *before* decoding: the exact-byte-count check
    // both rejects corruption and bounds the vector decoder's 16-byte
    // overreads inside the payload (the slack only guarantees room past
    // an honest stream).
    std::uint64_t expect = 0;
    {
      std::size_t i = 0;
      for (; i + 4 <= count; i += 4) {
        const unsigned c = ctrl[i >> 2];
        expect += 4 + (c & 3u) + ((c >> 2) & 3u) + ((c >> 4) & 3u) + ((c >> 6) & 3u);
      }
      for (; i < count; ++i) {
        expect += ((ctrl[i >> 2] >> ((i & 3) * 2)) & 3u) + 1u;
      }
    }
    if (stream_lo + ctrl_bytes + expect != stream_hi) {
      corrupt("group stream (byte count mismatch)");
    }
    const std::size_t consumed = decode(ctrl, ctrl + ctrl_bytes, count, out);
    if (consumed != expect) corrupt("group stream (decoder disagreement)");
    // Undelta in u64 so a corrupt gap cannot wrap, and range-check every
    // reconstructed id — the decoded window upholds the same invariants
    // the loader's id scan enforces on ADJ4. Gaps are unsigned, so the
    // accumulator is monotone across a row: its final value bounds every
    // id stored above it, and one check per row rejects exactly the
    // streams a per-element check would.
    graph::NodeId* p = out;
    for (graph::NodeId r = r0; r < r1; ++r) {
      const std::size_t deg = offsets[r + 1] - offsets[r];
      if (deg == 0) continue;
      std::uint64_t acc = p[0];
      for (std::size_t e = 1; e < deg; ++e) {
        acc += p[e];
        p[e] = static_cast<graph::NodeId>(acc);
      }
      if (acc >= n) corrupt("stream (neighbor id out of range)");
      p += deg;
    }
    out += count;
  }
}

ShardWindow ShardPipeline::window_for(std::uint32_t s) const noexcept {
  ShardWindow w;
  w.begin = plan_.begin(s);
  w.end = plan_.end(s);
  if (compressed_) {
    const Slot& slot = slots_[s % 2];
    w.offsets = slot.offsets.data();
    w.neighbors = slot.values.data();
    w.local = true;
  } else {
    w.offsets = graph_->offsets().data();
    w.neighbors = graph_->raw_neighbors().data();
    w.local = false;
  }
  return w;
}

ShardWindow ShardPipeline::acquire(std::uint32_t s) {
  resilience::fault_point("shard.window");
  const std::uint32_t shards = plan_.num_shards();
  if (threaded_) {
    bool stalled = false;
    double stall_seconds = 0.0;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      const auto want = static_cast<std::int64_t>(s);
      // Resync after an interrupted sweep (injected fault, engine error):
      // if nobody is staging or has staged this shard, post it ourselves.
      if (ready_ != want && staging_ != want && request_ != want &&
          error_ == nullptr) {
        request_ = want;
        cv_.notify_all();
      }
      if (ready_ != want && error_ == nullptr) {
        stalled = true;
        SOCMIX_TRACE_SPAN("shard.prefetch_wait");
        const auto wait_start = std::chrono::steady_clock::now();
        cv_.wait(lock, [&] { return ready_ == want || error_ != nullptr; });
        stall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wait_start)
                            .count();
      }
      if (error_ != nullptr) {
        const std::exception_ptr error = error_;
        error_ = nullptr;
        std::rethrow_exception(error);
      }
      if (s + 1 < shards) {
        request_ = static_cast<std::int64_t>(s) + 1;
        cv_.notify_all();
      }
    }
    if (stalled) {
      SOCMIX_COUNTER_ADD("markov.shard.prefetch_stalls", 1);
      SOCMIX_TIME_OBSERVE("markov.shard.prefetch_stall_seconds", stall_seconds);
    }
  } else {
    // Synchronous staging, preserving the classic madvise cadence: advise
    // this window on the first shard, advise one ahead, and let the
    // compute thread take the faults (and the decode, when compressed).
    if (mapped_ != nullptr) {
      if (s == 0) mapped_->advise_rows(plan_.begin(0), plan_.end(0));
      if (s + 1 < shards) mapped_->advise_rows(plan_.begin(s + 1), plan_.end(s + 1));
    }
    if (compressed_) decode_window(s, slots_[s % 2]);
  }
  if (s > 0 && mapped_ != nullptr) {
    mapped_->release_rows(plan_.begin(s - 1), plan_.end(s - 1));
  }
  return window_for(s);
}

void ShardPipeline::finish_sweep() {
  const std::uint32_t shards = plan_.num_shards();
  if (shards == 0) return;
  if (mapped_ != nullptr) {
    mapped_->release_rows(plan_.begin(shards - 1), plan_.end(shards - 1));
  }
  if (threaded_) {
    // Stage the next sweep's first window now: it fills behind the
    // caller's between-sweep work (TVD reduction, prescale, vector ops).
    const std::lock_guard<std::mutex> lock{mutex_};
    if (error_ == nullptr && ready_ != 0 && staging_ != 0) {
      request_ = 0;
      cv_.notify_all();
    }
    cv_.notify_all();
  }
}

}  // namespace socmix::linalg
