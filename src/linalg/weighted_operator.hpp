// Symmetrized weighted walk operator N_w = S^{-1/2} W S^{-1/2}.
//
// The weighted random walk steps to neighbor j with probability
// w_ij / strength(i); its transition matrix S^{-1} W is similar to the
// symmetric N_w, whose spectrum Lanczos extracts exactly as in the
// unweighted case. The eigenvalue-1 eigenvector is S^{1/2} 1 normalized,
// i.e. sqrt(strength_i / total_strength).
#pragma once

#include <span>
#include <vector>

#include "graph/frontier.hpp"
#include "graph/weighted_graph.hpp"

namespace socmix::linalg {

/// Matrix-free symmetric operator for a weighted graph's normalized
/// adjacency; satisfies the WalkLikeOperator concept. Requires strictly
/// positive strengths everywhere (no isolated vertices).
class WeightedWalkOperator {
 public:
  explicit WeightedWalkOperator(const graph::WeightedGraph& g, double laziness = 0.0);

  void apply(std::span<const double> x, std::span<double> y) const noexcept;

  /// Frontier variant of apply(): computes y[i] only for rows inside
  /// `ranges` (sorted, disjoint), leaving other rows untouched. No
  /// prescale exists here at all (the source normalization is folded into
  /// edge_scaled_ at construction), so the sparse call does work
  /// proportional to the covered rows alone. Bit-identical to apply() on
  /// the covered rows.
  void apply_rows(std::span<const double> x, std::span<double> y,
                  std::span<const graph::RowRange> ranges) const noexcept;

  [[nodiscard]] std::size_t dim() const noexcept { return inv_sqrt_strength_.size(); }
  [[nodiscard]] double laziness() const noexcept { return laziness_; }

  /// Unit-norm eigenvector of eigenvalue 1: sqrt(strength_i / total).
  [[nodiscard]] std::vector<double> top_eigenvector() const;

  [[nodiscard]] const graph::WeightedGraph& graph() const noexcept { return *graph_; }

 private:
  const graph::WeightedGraph* graph_;
  std::vector<double> inv_sqrt_strength_;
  /// Per-edge weight with the source-side 1/sqrt(strength) folded in, so
  /// apply() gathers only x[j] per edge (built once at construction).
  std::vector<double> edge_scaled_;
  double laziness_;
};

}  // namespace socmix::linalg
