#include "linalg/lanczos.hpp"

// Explicit instantiation for the common unweighted operator keeps its code
// out of every including translation unit.

namespace socmix::linalg {

template SpectrumResult slem_spectrum<WalkOperator>(const WalkOperator&,
                                                    const LanczosOptions&);
template SpectrumResult slem_spectrum_with_vector<WalkOperator>(const WalkOperator&,
                                                                const LanczosOptions&);

}  // namespace socmix::linalg
