#include "linalg/power_iteration.hpp"

#include <cmath>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "obs/obs.hpp"

namespace socmix::linalg {

PowerIterationResult power_iteration_slem(const WalkOperator& op,
                                          const PowerIterationOptions& options) {
  SOCMIX_TRACE_SPAN("power_iteration.solve");
  SOCMIX_COUNTER_ADD("linalg.power.solves", 1);
  PowerIterationResult result;
  const std::size_t n = op.dim();
  if (n <= 1) {
    result.converged = true;
    return result;
  }

  const std::vector<double> deflate = op.top_eigenvector();
  util::Rng rng{options.seed};
  std::vector<double> v(n);
  randomize_unit(v, rng);
  orthogonalize_against(v, deflate);
  normalize2(v);

  std::vector<double> w(n);
  double estimate = 0.0;
  for (std::size_t it = 1; it <= options.max_iterations; ++it) {
    op.apply(v, w);
    orthogonalize_against(w, deflate);  // counteract numeric drift
    // Rayleigh quotient keeps the sign of the dominant eigenvalue even
    // though the iterate itself may oscillate for negative eigenvalues.
    const double rayleigh = dot(w, v);
    const double change = std::fabs(rayleigh - estimate);
    estimate = rayleigh;
    if (normalize2(w) == 0.0) {
      result.converged = true;
      result.iterations = it;
      break;
    }
    v.swap(w);
    result.iterations = it;
    if (it > 1 && change <= options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // For eigenvalues of opposite sign and equal modulus (bipartite-like),
  // the Rayleigh quotient may hover near a combination; report by modulus.
  const double laziness = op.laziness();
  result.eigenvalue = (estimate - laziness) / (1.0 - laziness);
  SOCMIX_COUNTER_ADD("linalg.power.iterations", result.iterations);
  SOCMIX_GAUGE_SET("linalg.power.last_iterations", result.iterations);
  return result;
}

}  // namespace socmix::linalg
