// Shard-at-a-time variant of WalkOperator for out-of-core spectra.
//
// Satisfies the WalkLikeOperator concept (see lanczos.hpp), so
// slem_spectrum runs Lanczos on a memory-mapped graph unchanged: apply()
// sweeps one contiguous vertex shard at a time through a ShardPipeline,
// which stages each shard's CSR window (madvise windowing, optional
// prefetch thread, optional ADJC decode) so the adjacency residency stays
// near two shards however large the graph is. Rows are independent and
// every row runs the identical spmv kernel, so shard geometry, io-mode
// and compression never change an output bit — apply() is bitwise equal
// to WalkOperator::apply for any shard count (tests/linalg/
// test_sharded_operator.cpp).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/sharded/mapped_graph.hpp"
#include "graph/sharded/plan.hpp"
#include "linalg/shard_pipeline.hpp"

namespace socmix::linalg {

class ShardedWalkOperator {
 public:
  /// `plan.dim()` must equal g.num_nodes(). `mapped`, when non-null, must
  /// back `g` and outlive the operator; it enables the madvise windowing.
  /// A headless `g` (compressed container) requires its `mapped`.
  /// `io_mode` selects synchronous staging or the prefetch worker; it is
  /// a pure I/O knob (results identical either way).
  ShardedWalkOperator(const graph::Graph& g, graph::ShardPlan plan, double laziness = 0.0,
                      const graph::sharded::MappedGraph* mapped = nullptr,
                      IoMode io_mode = IoMode::kSync);

  /// y = Op * x; bitwise equal to WalkOperator::apply. Same scratch caveat:
  /// no concurrent apply() calls on one operator.
  void apply(std::span<const double> x, std::span<double> y) const;

  [[nodiscard]] std::size_t dim() const noexcept { return inv_sqrt_deg_.size(); }
  [[nodiscard]] double laziness() const noexcept { return laziness_; }
  [[nodiscard]] std::vector<double> top_eigenvector() const;
  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const graph::ShardPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] IoMode io_mode() const noexcept { return pipeline_->mode(); }

  [[nodiscard]] double map_eigenvalue(double simple_lambda) const noexcept {
    return (1.0 - laziness_) * simple_lambda + laziness_;
  }

 private:
  const graph::Graph* graph_;
  const graph::sharded::MappedGraph* mapped_;
  graph::ShardPlan plan_;
  std::vector<double> inv_sqrt_deg_;
  mutable std::vector<double> scaled_;
  /// unique_ptr: the pipeline owns a worker thread and is neither
  /// copyable nor movable; the operator stays movable through it.
  std::unique_ptr<ShardPipeline> pipeline_;
  double laziness_;
};

}  // namespace socmix::linalg
