// Shard-at-a-time variant of WalkOperator for out-of-core spectra.
//
// Satisfies the WalkLikeOperator concept (see lanczos.hpp), so
// slem_spectrum runs Lanczos on a memory-mapped graph unchanged: apply()
// sweeps one contiguous vertex shard at a time, advising the next shard's
// CSR window into memory and releasing the previous one, so the adjacency
// residency stays near two shards however large the graph is. Rows are
// independent and every row runs the identical spmv kernel, so shard
// geometry never changes an output bit — apply() is bitwise equal to
// WalkOperator::apply for any shard count (tests/linalg/
// test_sharded_operator.cpp).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/sharded/mapped_graph.hpp"
#include "graph/sharded/plan.hpp"

namespace socmix::linalg {

class ShardedWalkOperator {
 public:
  /// `plan.dim()` must equal g.num_nodes(). `mapped`, when non-null, must
  /// back `g` and outlive the operator; it enables the madvise windowing
  /// (without it the shard loop still runs, identically, in memory).
  ShardedWalkOperator(const graph::Graph& g, graph::ShardPlan plan, double laziness = 0.0,
                      const graph::sharded::MappedGraph* mapped = nullptr);

  /// y = Op * x; bitwise equal to WalkOperator::apply. Same scratch caveat:
  /// no concurrent apply() calls on one operator.
  void apply(std::span<const double> x, std::span<double> y) const;

  [[nodiscard]] std::size_t dim() const noexcept { return inv_sqrt_deg_.size(); }
  [[nodiscard]] double laziness() const noexcept { return laziness_; }
  [[nodiscard]] std::vector<double> top_eigenvector() const;
  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const graph::ShardPlan& plan() const noexcept { return plan_; }

  [[nodiscard]] double map_eigenvalue(double simple_lambda) const noexcept {
    return (1.0 - laziness_) * simple_lambda + laziness_;
  }

 private:
  const graph::Graph* graph_;
  const graph::sharded::MappedGraph* mapped_;
  graph::ShardPlan plan_;
  std::vector<double> inv_sqrt_deg_;
  mutable std::vector<double> scaled_;
  double laziness_;
};

}  // namespace socmix::linalg
