#include "linalg/dense.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace socmix::linalg {

DenseSym dense_walk_matrix(const graph::Graph& g, double laziness) {
  const std::size_t n = g.num_nodes();
  DenseSym m;
  m.n = n;
  m.a.assign(n * n, 0.0);
  std::vector<double> inv_sqrt_deg(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto d = g.degree(v);
    if (d == 0) throw std::invalid_argument{"dense_walk_matrix: isolated vertex"};
    inv_sqrt_deg[v] = 1.0 / std::sqrt(static_cast<double>(d));
  }
  for (graph::NodeId u = 0; u < n; ++u) {
    for (const graph::NodeId v : g.neighbors(u)) {
      m.at(u, v) = (1.0 - laziness) * inv_sqrt_deg[u] * inv_sqrt_deg[v];
    }
    m.at(u, u) += laziness;
  }
  return m;
}

std::vector<double> dense_transition_matrix(const graph::Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<double> p(n * n, 0.0);
  for (graph::NodeId u = 0; u < n; ++u) {
    const auto d = g.degree(u);
    if (d == 0) continue;
    const double w = 1.0 / static_cast<double>(d);
    for (const graph::NodeId v : g.neighbors(u)) p[u * n + v] = w;
  }
  return p;
}

std::vector<double> jacobi_eigenvalues(DenseSym m, int max_sweeps) {
  const std::size_t n = m.n;
  if (n == 0) return {};

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += m.at(i, j) * m.at(i, j);
    if (off < 1e-24) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m.at(p, q);
        if (std::fabs(apq) < 1e-18) continue;
        const double app = m.at(p, p);
        const double aqq = m.at(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(1.0, theta) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply rotation J(p,q,theta) on both sides.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = m.at(k, p);
          const double akq = m.at(k, q);
          m.at(k, p) = c * akp - s * akq;
          m.at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = m.at(p, k);
          const double aqk = m.at(q, k);
          m.at(p, k) = c * apk - s * aqk;
          m.at(q, k) = s * apk + c * aqk;
        }
      }
    }
  }

  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = m.at(i, i);
  std::sort(values.begin(), values.end());
  return values;
}

double dense_slem(const graph::Graph& g) {
  const auto values = jacobi_eigenvalues(dense_walk_matrix(g));
  if (values.size() < 2) return 0.0;
  const double lambda2 = values[values.size() - 2];
  const double lambda_min = values.front();
  return std::clamp(std::max(lambda2, std::fabs(lambda_min)), 0.0, 1.0);
}

}  // namespace socmix::linalg
