// Deflated power iteration — the simple baseline eigensolver.
//
// Kept alongside Lanczos for two reasons: (1) as an independent check of
// lambda_2 in tests, (2) as the ablation subject for the "why Lanczos"
// design choice (micro benchmark): power iteration needs O(1/gap) matvecs
// while Lanczos needs O(1/sqrt(gap)), which on slow-mixing social graphs
// (tiny gap) is the difference between seconds and minutes.
#pragma once

#include <cstdint>

#include "linalg/walk_operator.hpp"

namespace socmix::linalg {

struct PowerIterationOptions {
  std::size_t max_iterations = 20000;
  /// Stop when successive eigenvalue estimates differ by less than this.
  double tolerance = 1e-10;
  std::uint64_t seed = 0xfeedfacecafebeefULL;
};

struct PowerIterationResult {
  /// Dominant eigenvalue of the deflated operator = lambda_2 of P, *by
  /// modulus*: if |lambda_min| > lambda_2 this converges to lambda_min.
  double eigenvalue = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Power iteration on the walk operator deflated by its known top
/// eigenvector. Returns the largest-modulus remaining eigenvalue, i.e.
/// exactly the paper's SLEM (signed).
[[nodiscard]] PowerIterationResult power_iteration_slem(
    const WalkOperator& op, const PowerIterationOptions& options = {});

}  // namespace socmix::linalg
