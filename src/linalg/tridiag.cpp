#include "linalg/tridiag.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace socmix::linalg {

namespace {
/// sqrt(a^2 + b^2) without destructive overflow/underflow.
[[nodiscard]] double pythag(double a, double b) noexcept { return std::hypot(a, b); }
}  // namespace

TridiagEigen tridiag_eigen(std::span<const double> diag, std::span<const double> offdiag,
                           bool want_vectors) {
  const std::size_t m = diag.size();
  TridiagEigen out;
  out.values.assign(diag.begin(), diag.end());
  if (m == 0) return out;
  if (offdiag.size() + 1 != m) {
    throw std::invalid_argument{"tridiag_eigen: offdiag must have size m-1"};
  }

  std::vector<double> e(m, 0.0);
  std::copy(offdiag.begin(), offdiag.end(), e.begin());  // e[i] couples i,i+1

  std::vector<double>& d = out.values;
  std::vector<double>& z = out.vectors;
  if (want_vectors) {
    z.assign(m * m, 0.0);
    for (std::size_t i = 0; i < m; ++i) z[i * m + i] = 1.0;  // identity
  }

  // Implicit QL with Wilkinson shift (tqli, Numerical-Recipes structure).
  for (std::size_t l = 0; l < m; ++l) {
    int iterations = 0;
    std::size_t split = 0;
    do {
      // Find the first negligible off-diagonal at or after l.
      for (split = l; split + 1 < m; ++split) {
        const double dd = std::fabs(d[split]) + std::fabs(d[split + 1]);
        if (std::fabs(e[split]) <= 1e-16 * dd) break;
      }
      if (split != l) {
        if (iterations++ == 50) {
          throw std::runtime_error{"tridiag_eigen: QL iteration did not converge"};
        }
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = pythag(g, 1.0);
        g = d[split] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::size_t i = split; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = pythag(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[split] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          if (want_vectors) {
            for (std::size_t k = 0; k < m; ++k) {
              f = z[k * m + i + 1];
              z[k * m + i + 1] = s * z[k * m + i] + c * f;
              z[k * m + i] = c * z[k * m + i] - s * f;
            }
          }
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[split] = 0.0;
      }
    } while (split != l);
  }

  // Sort eigenvalues ascending, permuting eigenvectors alongside.
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return d[a] < d[b]; });

  std::vector<double> sorted_values(m);
  for (std::size_t k = 0; k < m; ++k) sorted_values[k] = d[order[k]];

  if (want_vectors) {
    // z holds eigenvectors as columns (z[row*m + col]); re-emit each sorted
    // eigenvector as a contiguous row.
    std::vector<double> sorted_vectors(m * m);
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t col = order[k];
      for (std::size_t i = 0; i < m; ++i) sorted_vectors[k * m + i] = z[i * m + col];
    }
    out.vectors = std::move(sorted_vectors);
  }
  out.values = std::move(sorted_values);
  return out;
}

}  // namespace socmix::linalg
