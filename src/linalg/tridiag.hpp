// Symmetric tridiagonal eigensolver (implicit QL with Wilkinson shifts),
// the inner solver of the Lanczos procedure.
//
// Classic EISPACK tql2/imtql2 algorithm: O(m^2) per eigenvalue without
// vectors, O(m^3) with, where m is the (small) Lanczos subspace dimension.
#pragma once

#include <span>
#include <vector>

namespace socmix::linalg {

/// Eigen-decomposition of a symmetric tridiagonal matrix.
struct TridiagEigen {
  /// Eigenvalues in ascending order.
  std::vector<double> values;
  /// Row-major m x m eigenvector matrix; vectors[k*m + i] is component i of
  /// the eigenvector for values[k]. Empty when vectors were not requested.
  std::vector<double> vectors;
};

/// Computes all eigenvalues (and optionally eigenvectors) of the symmetric
/// tridiagonal matrix with diagonal `diag` (size m) and off-diagonal
/// `offdiag` (size m-1; offdiag[i] couples i and i+1).
/// Throws std::runtime_error if the QL iteration fails to converge
/// (pathological input; cannot happen for Lanczos output in practice).
[[nodiscard]] TridiagEigen tridiag_eigen(std::span<const double> diag,
                                         std::span<const double> offdiag,
                                         bool want_vectors);

}  // namespace socmix::linalg
