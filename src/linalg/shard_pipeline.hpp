// Double-buffered shard window pipeline: hide I/O behind compute.
//
// The sharded engines (markov::ShardedBatchedEvolver, linalg::
// ShardedWalkOperator) sweep a mapped CSR one contiguous shard at a time.
// Before this pipeline existed they advised the next window and paged it
// in synchronously — every cold page fault landed on the compute thread.
// ShardPipeline moves the paging (and, for compressed containers, the
// decoding) onto one dedicated worker thread with two window slots:
// while compute sweeps shard k, the worker faults shard k+1's bytes in
// (madvise(WILLNEED) + one touch per page) or decodes them into the
// other scratch slot, and the window behind the sweep is released. The
// sweep only ever blocks when the worker falls behind, and that stall is
// measured: markov.shard.prefetch_stall_seconds / prefetch_stalls along
// with the shard.prefetch_wait / shard.prefetch_fill trace spans are the
// overlap evidence (DESIGN.md "Shard pipeline & compression").
//
// IoMode::kSync preserves the pre-pipeline behavior exactly — the same
// madvise calls in the same order, decode (if any) inline on the compute
// thread. Either mode, either adjacency representation, the window handed
// to compute holds bit-identical neighbor ids in bit-identical order, so
// io-mode and compression are pure I/O knobs: results never change by a
// bit and neither is folded into the checkpoint context.
//
// Windows over a compressed (ADJC) container are decoded group-by-group
// into per-slot scratch and returned with `local == true`: `offsets` is
// then a window-local array (index row j - begin, values indexing
// `neighbors` directly) instead of the absolute CSR arrays. All decoding
// precedes all floating-point math of the shard, and the decoder
// re-validates every group (stream byte counts, id range) so a corrupt
// stream fails closed even when load-time CRC verification was skipped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "graph/graph.hpp"
#include "graph/sharded/mapped_graph.hpp"
#include "graph/sharded/plan.hpp"
#include "util/aligned.hpp"

namespace socmix::linalg {

/// How the sharded engines stage CSR windows (--io-mode sync|prefetch).
enum class IoMode : std::uint8_t {
  kSync = 0,      ///< advise ahead, fault on the compute thread (classic)
  kPrefetch = 1,  ///< worker thread faults/decodes one shard ahead
};

[[nodiscard]] const char* io_mode_name(IoMode mode) noexcept;
[[nodiscard]] std::optional<IoMode> parse_io_mode(std::string_view name) noexcept;

/// One shard's adjacency, ready for the kernels.
///
/// local == false: `offsets`/`neighbors` are the graph's absolute CSR
/// arrays (row j of the shard is indexed as offsets[j], j in
/// [begin, end)) — the uncompressed passthrough.
/// local == true: decoded-scratch window. `offsets` has end-begin+1
/// entries, indexed by j - begin, and its values index `neighbors`
/// directly (offsets[0] need not be 0: scratch starts at the covering
/// compression-group boundary). Valid until the *next* acquire of the
/// same slot, i.e. through this shard's compute.
struct ShardWindow {
  const graph::EdgeIndex* offsets = nullptr;
  const graph::NodeId* neighbors = nullptr;
  graph::NodeId begin = 0;
  graph::NodeId end = 0;
  bool local = false;
};

class ShardPipeline {
 public:
  /// `g` and `mapped` (nullable for in-memory graphs) must outlive the
  /// pipeline. A headless `g` (compressed container) requires `mapped`.
  /// The worker thread starts — and shard 0's fill is posted — only for
  /// kPrefetch with actual staging work (a mapping or a decode).
  ShardPipeline(const graph::Graph& g, graph::ShardPlan plan,
                const graph::sharded::MappedGraph* mapped, IoMode mode);
  ~ShardPipeline();

  ShardPipeline(const ShardPipeline&) = delete;
  ShardPipeline& operator=(const ShardPipeline&) = delete;

  /// Hands shard `s`'s window to compute. Shards must be acquired in
  /// ascending order within a sweep. Blocks until the window is staged
  /// (counting the stall), posts shard s+1 to the worker, and releases
  /// the pages behind shard s-1. Hits the "shard.window" fault site.
  /// Rethrows any staging error (e.g. a corrupt ADJC group) here, on the
  /// compute thread.
  [[nodiscard]] ShardWindow acquire(std::uint32_t s);

  /// Ends a sweep: releases the last shard's pages and posts shard 0 so
  /// the next sweep's first window stages behind the caller's between-
  /// sweep work (TVD reduction, prescale, Lanczos vector ops).
  void finish_sweep();

  [[nodiscard]] IoMode mode() const noexcept { return mode_; }
  /// True when windows are decoded (compressed container): acquire
  /// returns local windows and the engine must use the rebased kernel
  /// call; also implies the frontier optimization is unavailable.
  [[nodiscard]] bool decodes() const noexcept { return compressed_; }
  /// Bytes of decode scratch held across both slots (0 uncompressed).
  [[nodiscard]] std::size_t scratch_bytes() const noexcept { return scratch_bytes_; }

 private:
  struct Slot {
    std::vector<graph::EdgeIndex> offsets;       // window-local, rows+1
    util::aligned_vector<graph::NodeId> values;  // decoded neighbor ids
    graph::NodeId begin = 0;
    graph::NodeId end = 0;
  };

  void stage(std::uint32_t s);  // fault in and/or decode shard s
  void decode_window(std::uint32_t s, Slot& slot);
  void worker_main();
  [[nodiscard]] ShardWindow window_for(std::uint32_t s) const noexcept;

  const graph::Graph* graph_;
  const graph::sharded::MappedGraph* mapped_;
  graph::ShardPlan plan_;
  IoMode mode_;
  bool compressed_ = false;
  bool threaded_ = false;
  std::size_t scratch_bytes_ = 0;
  Slot slots_[2];

  // Worker handshake (guarded by mutex_). The sweep is sequential, so at
  // most one fill is outstanding: request_ is the shard the worker should
  // stage next, staging_ the one it is staging, ready_ the one staged and
  // not yet superseded (-1 each when none).
  std::thread worker_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::int64_t request_ = -1;
  std::int64_t staging_ = -1;
  std::int64_t ready_ = -1;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace socmix::linalg
