// SIMD kernel tier with runtime dispatch — the compute layer under the
// hot sweeps.
//
// The batched 32-lane SpMM + fused TVD (markov::BatchedEvolver), the
// single-vector gather-stream SpMV (linalg::{Walk,WeightedWalk}Operator,
// markov::DistributionEvolver) and their frontier range variants all
// funnel through one table of kernel function pointers. Three tiers
// implement the table:
//
//   scalar   the portable fallback — the exact pre-SIMD kernel code,
//            compiled with the build's baseline flags;
//   avx2     256-bit vertical ops + i32 gathers;
//   avx512   512-bit vertical ops + i32 gathers.
//
// The active tier is chosen once at first use: the widest tier that was
// compiled in AND that the running CPU reports support for (via
// __builtin_cpu_supports), overridable with SOCMIX_SIMD=scalar|avx2|avx512
// (or set_tier() from tests/benches). An unavailable override falls back
// to the best available tier with a warning, never to an illegal
// instruction.
//
// Determinism contract (the "rounding-point contract", see DESIGN.md
// "Kernel tiers & precision"): every tier performs the identical
// floating-point operation sequence per lane — per-row accumulation in
// CSR edge order, multiply-then-add affine combines (the kernel TUs are
// compiled with -ffp-contract=off and the vector code never uses FMA),
// and TVD terms reduced in ascending-row order. Tier choice therefore
// never changes a single output bit; tests/linalg/test_simd_parity.cpp
// enforces scalar↔avx2↔avx512 bitwise equality on all Table-1 configs.
//
// Mixed precision (Precision::kMixed, --precision mixed): lane state is
// stored and gathered as float32 — halving the memory traffic of a
// bandwidth-bound sweep — while every per-row arithmetic step runs in
// float64 (widen on load, round once on store) and the TVD reduction
// uses float64 Neumaier-compensated summation, so the only error source
// is state quantization. |TVD_mixed - TVD_f64| stays under
// kMixedTvdBudget on every measured workload; the ε-crossing decision is
// guarded by that budget (markov.sampled.mixed_eps_guard counts
// decisions landing inside the band). Mixed results are also
// bit-identical across tiers — the contract above applies per precision.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "graph/frontier.hpp"
#include "graph/types.hpp"

namespace socmix::linalg::simd {

/// Widest lane block any SpMM kernel supports (accumulators stay in
/// registers / on the stack). Mirrored by markov::BatchedEvolver::kMaxBlock.
inline constexpr std::size_t kMaxLanes = 32;

/// Documented accuracy budget of mixed precision: on every measured
/// workload (all 15 Table-1 stand-ins, 500-step walks) the per-step
/// |TVD_mixed - TVD_f64| stays well under this bound — the f32 state
/// quantization is the only error source, the Neumaier reduction
/// contributes < 1 ulp. Enforced by test_simd_parity's accuracy tests.
inline constexpr double kMixedTvdBudget = 5e-5;

enum class Tier : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

enum class Precision : std::uint8_t {
  kFloat64 = 0,  ///< exact-parity default: f64 state, bit-identical to seed
  kMixed = 1,    ///< f32 state, f64 arithmetic + compensated TVD
};

/// Batched multi-lane SpMM sweep (optionally fused with the TVD-to-pi
/// reduction). For each row j — all of [0, n) when `ranges` is null,
/// otherwise the rows inside `ranges` with the skipped rows' pi-gap terms
/// interleaved in ascending-row order exactly as the dense sweep would
/// produce them (see graph::FrontierSet):
///   acc[b]  = sum_{e in row j} scaled[neighbors[e]*stride + b]
///   next_jb = walk_weight*acc[b] + laziness*cur[j*stride + b]
///   tvd[b] += |next_jb - pi[j]|            (f64: plain; mixed: Neumaier)
struct SpmmArgs {
  graph::NodeId n = 0;
  const graph::EdgeIndex* offsets = nullptr;
  const graph::NodeId* neighbors = nullptr;
  std::size_t stride = 0;  ///< lane stride of the block buffers
  std::size_t lanes = 0;   ///< active lanes, <= min(stride, kMaxLanes)
  double walk_weight = 0.0;
  double laziness = 0.0;
  const double* pi = nullptr;  ///< null: skip the fused TVD
  double* tvd_out = nullptr;   ///< [lanes], written when pi != null
  const graph::RowRange* ranges = nullptr;  ///< null: dense sweep of [0, n)
  std::size_t num_ranges = 0;
};

using SpmmF64Fn = void (*)(const SpmmArgs& args, const double* scaled,
                           const double* cur, double* next);
using SpmmMixedFn = void (*)(const SpmmArgs& args, const float* scaled,
                             const float* cur, float* next);

/// Single-vector gather-stream SpMV over rows [row_begin, row_end):
///   acc  = sum_{e in row i} (edge_scale ? edge_scale[e] : 1) * gather[neighbors[e]]
///   y[i] = walk_weight*acc * (row_scale ? row_scale[i] : 1) + laziness*x[i]
/// matching the scalar epilogues of WalkOperator (row_scale =
/// inv_sqrt_deg), DistributionEvolver (row_scale null) and
/// WeightedWalkOperator (edge_scale = folded weights). The SIMD tiers use
/// i32 gathers, so they require num_nodes < 2^31 — guaranteed by the u32
/// NodeId CSR long before that bound matters.
struct SpmvArgs {
  const graph::EdgeIndex* offsets = nullptr;
  const graph::NodeId* neighbors = nullptr;
  const double* gather = nullptr;  ///< gathered source (prescaled x, or raw x)
  const double* x = nullptr;       ///< epilogue input
  double* y = nullptr;
  double walk_weight = 0.0;
  double laziness = 0.0;
  const double* row_scale = nullptr;   ///< per-row factor, or null
  const double* edge_scale = nullptr;  ///< per-edge factor, or null
};

using SpmvFn = void (*)(const SpmvArgs& args, graph::NodeId row_begin,
                        graph::NodeId row_end);

/// Elementwise prescale out[i] = x[i] * w[i] over [begin, end). The mixed
/// variant widens the f32 state, multiplies in f64 and rounds once, so
/// every tier produces identical bits.
using PrescaleF64Fn = void (*)(const double* x, const double* w, double* out,
                               std::size_t begin, std::size_t end);
using PrescaleMixedFn = void (*)(const float* x, const double* w, float* out,
                                 std::size_t begin, std::size_t end);

/// Stream-vbyte block decode of `count` u32 values: 2-bit length codes
/// packed four-per-control-byte in `ctrl` (ceil(count/4) bytes), 1..4
/// little-endian data bytes per value in `data`. Returns the data bytes
/// consumed. Pure integer reconstruction — every tier produces identical
/// words, so the decoded adjacency feeding the FP kernels is bit-exact by
/// construction. Vector tiers may load a full 16 bytes at any consumed
/// data position; callers guarantee 16 readable bytes past the last value
/// (the ADJC payload carries that slack — see graph/sharded/adjc.hpp).
using DecodeU32Fn = std::size_t (*)(const std::uint8_t* ctrl, const std::uint8_t* data,
                                    std::size_t count, std::uint32_t* out);

struct KernelTable {
  Tier tier = Tier::kScalar;
  SpmmF64Fn spmm_f64 = nullptr;
  SpmmMixedFn spmm_mixed = nullptr;
  SpmvFn spmv = nullptr;
  PrescaleF64Fn prescale_f64 = nullptr;
  PrescaleMixedFn prescale_mixed = nullptr;
  DecodeU32Fn decode_u32 = nullptr;
};

/// The active kernel table (cpuid probe + SOCMIX_SIMD override, resolved
/// once, thread-safe). Hot paths cache the reference per call site.
[[nodiscard]] const KernelTable& dispatch() noexcept;

/// The tier dispatch() currently resolves to.
[[nodiscard]] Tier active_tier() noexcept;

/// True when `tier` was compiled in AND the running CPU supports it.
[[nodiscard]] bool tier_available(Tier tier) noexcept;

/// Forces the active tier (tests/benches). Returns false — leaving the
/// active tier unchanged — when the tier is unavailable on this machine.
/// Not safe concurrently with running kernels.
bool set_tier(Tier tier) noexcept;

/// Reverts set_tier() to the SOCMIX_SIMD / auto-probed choice.
void reset_tier() noexcept;

[[nodiscard]] const char* tier_name(Tier tier) noexcept;
[[nodiscard]] std::optional<Tier> parse_tier(std::string_view name) noexcept;

[[nodiscard]] const char* precision_name(Precision precision) noexcept;
[[nodiscard]] std::optional<Precision> parse_precision(std::string_view name) noexcept;

/// Word the resilience layer folds into a checkpoint's context so that a
/// snapshot written under a different precision is classified stale (a
/// mixed-mode trajectory must never be replayed into an exact-parity run).
[[nodiscard]] std::uint64_t precision_context_word(Precision precision) noexcept;

/// Standalone TVD-to-pi reduction over a *stored* lane-major state block:
/// per lane b, 0.5 * sum_j |state[j*stride + b] - pi[j]| with j ascending
/// over [0, n) (f64: plain accumulation; mixed: widened f32 state,
/// Neumaier-compensated f64 sum). Bit-identical to the fused reduction
/// the spmm kernels compute on the same stored state — swept rows store
/// exactly the value the fused term subtracts pi from, and skipped
/// frontier rows hold +0.0 so |0 - pi_j| reproduces the pi-gap term bit
/// for bit. The sharded engines use this after sweeping all shards with
/// pi == null. One scalar implementation serves every tier: the
/// reduction is adds and fabs only, with nothing tier-specific to pin.
void tvd_f64(const double* state, std::size_t stride, std::size_t lanes,
             const double* pi, graph::NodeId n, double* tvd_out) noexcept;
void tvd_mixed(const float* state, std::size_t stride, std::size_t lanes,
               const double* pi, graph::NodeId n, double* tvd_out) noexcept;

}  // namespace socmix::linalg::simd
