// Internal per-tier kernel entry points behind the dispatch table.
//
// Each tier lives in its own translation unit so it can carry its own
// target flags (see src/linalg/CMakeLists.txt): the scalar TU uses the
// build's baseline flags, the avx2/avx512 TUs add -mavx2 / -mavx512f.
// All three are compiled with -ffp-contract=off — the rounding-point
// contract in kernels.hpp forbids fused multiply-adds in any tier.
// dispatch.cpp is the only consumer.
#pragma once

#include "linalg/simd/kernels.hpp"

namespace socmix::linalg::simd::scalar {
void spmm_f64(const SpmmArgs& args, const double* scaled, const double* cur, double* next);
void spmm_mixed(const SpmmArgs& args, const float* scaled, const float* cur, float* next);
void spmv(const SpmvArgs& args, graph::NodeId row_begin, graph::NodeId row_end);
void prescale_f64(const double* x, const double* w, double* out, std::size_t begin,
                  std::size_t end);
void prescale_mixed(const float* x, const double* w, float* out, std::size_t begin,
                    std::size_t end);
std::size_t decode_u32(const std::uint8_t* ctrl, const std::uint8_t* data,
                       std::size_t count, std::uint32_t* out);
}  // namespace socmix::linalg::simd::scalar

#if defined(SOCMIX_SIMD_HAVE_AVX2)
namespace socmix::linalg::simd::avx2 {
void spmm_f64(const SpmmArgs& args, const double* scaled, const double* cur, double* next);
void spmm_mixed(const SpmmArgs& args, const float* scaled, const float* cur, float* next);
void spmv(const SpmvArgs& args, graph::NodeId row_begin, graph::NodeId row_end);
void prescale_f64(const double* x, const double* w, double* out, std::size_t begin,
                  std::size_t end);
void prescale_mixed(const float* x, const double* w, float* out, std::size_t begin,
                    std::size_t end);
std::size_t decode_u32(const std::uint8_t* ctrl, const std::uint8_t* data,
                       std::size_t count, std::uint32_t* out);
}  // namespace socmix::linalg::simd::avx2
#endif

#if defined(SOCMIX_SIMD_HAVE_AVX512)
namespace socmix::linalg::simd::avx512 {
void spmm_f64(const SpmmArgs& args, const double* scaled, const double* cur, double* next);
void spmm_mixed(const SpmmArgs& args, const float* scaled, const float* cur, float* next);
void spmv(const SpmvArgs& args, graph::NodeId row_begin, graph::NodeId row_end);
void prescale_f64(const double* x, const double* w, double* out, std::size_t begin,
                  std::size_t end);
void prescale_mixed(const float* x, const double* w, float* out, std::size_t begin,
                    std::size_t end);
}  // namespace socmix::linalg::simd::avx512
#endif
