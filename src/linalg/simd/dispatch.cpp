// Runtime CPU dispatch for the SIMD kernel tiers.
//
// The table is resolved once, on first use: the widest tier that (a) was
// compiled into this binary (src/linalg/CMakeLists.txt probes the
// compiler) and (b) the running CPU supports per __builtin_cpu_supports —
// which on x86 also verifies the OS saves the wide register state, so a
// probed tier can never fault. SOCMIX_SIMD=scalar|avx2|avx512 overrides
// the probe (CI forces each tier on one machine); an override naming an
// unavailable tier warns once on stderr and falls back to the probe.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "linalg/simd/kernels_detail.hpp"
#include "obs/obs.hpp"

namespace socmix::linalg::simd {

namespace {

constexpr KernelTable kScalarTable{
    Tier::kScalar,        &scalar::spmm_f64,     &scalar::spmm_mixed,
    &scalar::spmv,        &scalar::prescale_f64, &scalar::prescale_mixed,
    &scalar::decode_u32,
};

#if defined(SOCMIX_SIMD_HAVE_AVX2)
constexpr KernelTable kAvx2Table{
    Tier::kAvx2,        &avx2::spmm_f64,     &avx2::spmm_mixed,
    &avx2::spmv,        &avx2::prescale_f64, &avx2::prescale_mixed,
    &avx2::decode_u32,
};
#endif

#if defined(SOCMIX_SIMD_HAVE_AVX512)
// The varint decode is SSSE3 shuffle work with no 512-bit form worth
// having; the AVX-512 tier reuses the AVX2 decoder (an AVX-512 build
// always compiles the AVX2 TU too — see src/linalg/CMakeLists.txt).
constexpr KernelTable kAvx512Table{
    Tier::kAvx512,        &avx512::spmm_f64,     &avx512::spmm_mixed,
    &avx512::spmv,        &avx512::prescale_f64, &avx512::prescale_mixed,
#if defined(SOCMIX_SIMD_HAVE_AVX2)
    &avx2::decode_u32,
#else
    &scalar::decode_u32,
#endif
};
#endif

bool tier_compiled(Tier tier) noexcept {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
#if defined(SOCMIX_SIMD_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case Tier::kAvx512:
#if defined(SOCMIX_SIMD_HAVE_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool cpu_supports(Tier tier) noexcept {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Tier::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

const KernelTable* table_for(Tier tier) noexcept {
  switch (tier) {
    case Tier::kScalar:
      return &kScalarTable;
    case Tier::kAvx2:
#if defined(SOCMIX_SIMD_HAVE_AVX2)
      return &kAvx2Table;
#else
      return nullptr;
#endif
    case Tier::kAvx512:
#if defined(SOCMIX_SIMD_HAVE_AVX512)
      return &kAvx512Table;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const KernelTable* probe_default() noexcept {
  Tier best = Tier::kScalar;
  for (const Tier t : {Tier::kAvx2, Tier::kAvx512}) {
    if (tier_compiled(t) && cpu_supports(t)) best = t;
  }
  if (const char* env = std::getenv("SOCMIX_SIMD")) {
    if (const auto parsed = parse_tier(env)) {
      if (tier_available(*parsed)) {
        best = *parsed;
      } else {
        std::fprintf(stderr,
                     "socmix: SOCMIX_SIMD=%s is not available on this "
                     "build/CPU; using %s\n",
                     env, tier_name(best));
      }
    } else {
      std::fprintf(stderr,
                   "socmix: unrecognized SOCMIX_SIMD=%s (want scalar|avx2|avx512); "
                   "using %s\n",
                   env, tier_name(best));
    }
  }
  return table_for(best);
}

std::atomic<const KernelTable*> g_active{nullptr};
std::once_flag g_init_once;

const KernelTable* resolve() noexcept {
  std::call_once(g_init_once, [] {
    const KernelTable* table = probe_default();
    g_active.store(table, std::memory_order_release);
    SOCMIX_GAUGE_SET("linalg.simd.tier",
                     static_cast<std::uint64_t>(table->tier));
  });
  return g_active.load(std::memory_order_acquire);
}

}  // namespace

const KernelTable& dispatch() noexcept { return *resolve(); }

Tier active_tier() noexcept { return dispatch().tier; }

bool tier_available(Tier tier) noexcept {
  return tier_compiled(tier) && cpu_supports(tier);
}

bool set_tier(Tier tier) noexcept {
  if (!tier_available(tier)) return false;
  resolve();  // run the one-time init first so reset_tier() can't race it
  g_active.store(table_for(tier), std::memory_order_release);
  SOCMIX_GAUGE_SET("linalg.simd.tier", static_cast<std::uint64_t>(tier));
  return true;
}

void reset_tier() noexcept {
  resolve();
  const KernelTable* table = probe_default();
  g_active.store(table, std::memory_order_release);
  SOCMIX_GAUGE_SET("linalg.simd.tier", static_cast<std::uint64_t>(table->tier));
}

const char* tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<Tier> parse_tier(std::string_view name) noexcept {
  if (name == "scalar") return Tier::kScalar;
  if (name == "avx2") return Tier::kAvx2;
  if (name == "avx512") return Tier::kAvx512;
  return std::nullopt;
}

const char* precision_name(Precision precision) noexcept {
  switch (precision) {
    case Precision::kFloat64:
      return "f64";
    case Precision::kMixed:
      return "mixed";
  }
  return "unknown";
}

std::optional<Precision> parse_precision(std::string_view name) noexcept {
  if (name == "f64" || name == "float64" || name == "double") {
    return Precision::kFloat64;
  }
  if (name == "mixed") return Precision::kMixed;
  return std::nullopt;
}

std::uint64_t precision_context_word(Precision precision) noexcept {
  return static_cast<std::uint64_t>(precision);
}

}  // namespace socmix::linalg::simd
