// Scalar (portable) kernel tier.
//
// The f64 SpMM kernels are the pre-SIMD BatchedEvolver kernels moved here
// verbatim — they define the per-lane floating-point operation sequence
// every other tier must reproduce bit for bit, and compiling them with
// the build's baseline flags keeps the default build's output identical
// to the pre-dispatch code. The mixed-precision kernels below are the
// reference implementation of the f32-state / f64-arithmetic contract
// (see kernels.hpp): widen on load, round once on store, TVD terms from
// the *stored* f32 value, Neumaier-compensated f64 reduction.
//
// This TU is compiled with -ffp-contract=off (see src/linalg/CMakeLists)
// so a native build cannot contract the affine epilogues into FMAs —
// that pins the rounding points the vector tiers match.

#include <array>
#include <cmath>
#include <cstddef>
#include <span>

#include "linalg/simd/kernels_detail.hpp"
#include "util/prefetch.hpp"

namespace socmix::linalg::simd::scalar {

namespace {

constexpr std::size_t kPrefetchDistance = util::kGatherPrefetchDistance;

// Compile-time lane count (stride stays runtime so a partially filled
// block still takes this path): the b-loops unroll and vectorize, and the
// accumulators live in registers. The inner loop is a single gather + add
// per edge: the per-source scaling src[b] * inv_deg[i] was hoisted into
// the prescale pass (see BatchedEvolver::sweep), which computes the exact
// same rounded products, so the floating-point result per lane remains
// the operation sequence of DistributionEvolver::step + total_variation
// (CSR edge order, then ascending-row TVD) — bit-identical to the scalar
// path.
template <std::size_t B>
void sweep_fixed(graph::NodeId n, const graph::EdgeIndex* offsets,
                 const graph::NodeId* neighbors, const double* scaled,
                 const double* cur, double* next, std::size_t stride,
                 double walk_weight, double laziness, const double* pi,
                 double* tvd_out) {
  double tvd_acc[B];
  if (pi != nullptr) {
    for (std::size_t b = 0; b < B; ++b) tvd_acc[b] = 0.0;
  }
  for (graph::NodeId j = 0; j < n; ++j) {
    double acc[B];
    for (std::size_t b = 0; b < B; ++b) acc[b] = 0.0;
    const graph::EdgeIndex row_end = offsets[j + 1];
    for (graph::EdgeIndex e = offsets[j]; e < row_end; ++e) {
      if (e + kPrefetchDistance < row_end) {
        util::prefetch_read(
            scaled + static_cast<std::size_t>(neighbors[e + kPrefetchDistance]) * stride);
      }
      const double* src = scaled + static_cast<std::size_t>(neighbors[e]) * stride;
      for (std::size_t b = 0; b < B; ++b) acc[b] += src[b];
    }
    const double* cur_j = cur + static_cast<std::size_t>(j) * stride;
    double* next_j = next + static_cast<std::size_t>(j) * stride;
    for (std::size_t b = 0; b < B; ++b) {
      next_j[b] = walk_weight * acc[b] + laziness * cur_j[b];
    }
    if (pi != nullptr) {
      const double p = pi[j];
      for (std::size_t b = 0; b < B; ++b) tvd_acc[b] += std::fabs(next_j[b] - p);
    }
  }
  if (pi != nullptr) {
    for (std::size_t b = 0; b < B; ++b) tvd_out[b] = 0.5 * tvd_acc[b];
  }
}

// Runtime-width fallback for remainder blocks (active < block) and odd
// block sizes. Same operation order as sweep_fixed.
void sweep_generic(graph::NodeId n, const graph::EdgeIndex* offsets,
                   const graph::NodeId* neighbors, const double* scaled,
                   const double* cur, double* next, std::size_t stride,
                   std::size_t lanes, double walk_weight, double laziness,
                   const double* pi, double* tvd_out) {
  std::array<double, kMaxLanes> acc{};
  std::array<double, kMaxLanes> tvd_acc{};
  for (graph::NodeId j = 0; j < n; ++j) {
    for (std::size_t b = 0; b < lanes; ++b) acc[b] = 0.0;
    const graph::EdgeIndex row_end = offsets[j + 1];
    for (graph::EdgeIndex e = offsets[j]; e < row_end; ++e) {
      if (e + kPrefetchDistance < row_end) {
        util::prefetch_read(
            scaled + static_cast<std::size_t>(neighbors[e + kPrefetchDistance]) * stride);
      }
      const double* src = scaled + static_cast<std::size_t>(neighbors[e]) * stride;
      for (std::size_t b = 0; b < lanes; ++b) acc[b] += src[b];
    }
    const double* cur_j = cur + static_cast<std::size_t>(j) * stride;
    double* next_j = next + static_cast<std::size_t>(j) * stride;
    for (std::size_t b = 0; b < lanes; ++b) {
      next_j[b] = walk_weight * acc[b] + laziness * cur_j[b];
    }
    if (pi != nullptr) {
      const double p = pi[j];
      for (std::size_t b = 0; b < lanes; ++b) tvd_acc[b] += std::fabs(next_j[b] - p);
    }
  }
  if (pi != nullptr) {
    for (std::size_t b = 0; b < lanes; ++b) tvd_out[b] = 0.5 * tvd_acc[b];
  }
}

// Frontier variant of sweep_fixed: runs the identical row body over the
// closure's row ranges only. Rows outside the closure hold exactly +0.0
// in cur_/next_/scaled_ (seed invariant + monotone closure), so the dense
// kernel would have recomputed +0.0 for them and their TVD term
// fabs(0.0 - pi[j]) is pi[j] bit for bit — accumulated here in the same
// ascending-row order, interleaved with the swept rows, to keep the
// per-lane reduction sequence identical to the dense pass.
template <std::size_t B>
void frontier_sweep_fixed(std::span<const graph::RowRange> ranges, graph::NodeId n,
                          const graph::EdgeIndex* offsets, const graph::NodeId* neighbors,
                          const double* scaled, const double* cur, double* next,
                          std::size_t stride, double walk_weight, double laziness,
                          const double* pi, double* tvd_out) {
  double tvd_acc[B];
  if (pi != nullptr) {
    for (std::size_t b = 0; b < B; ++b) tvd_acc[b] = 0.0;
  }
  graph::NodeId done = 0;
  for (const graph::RowRange r : ranges) {
    if (pi != nullptr) {
      for (graph::NodeId j = done; j < r.begin; ++j) {
        const double p = pi[j];
        for (std::size_t b = 0; b < B; ++b) tvd_acc[b] += p;
      }
    }
    for (graph::NodeId j = r.begin; j < r.end; ++j) {
      double acc[B];
      for (std::size_t b = 0; b < B; ++b) acc[b] = 0.0;
      const graph::EdgeIndex row_end = offsets[j + 1];
      for (graph::EdgeIndex e = offsets[j]; e < row_end; ++e) {
        if (e + kPrefetchDistance < row_end) {
          util::prefetch_read(
              scaled + static_cast<std::size_t>(neighbors[e + kPrefetchDistance]) * stride);
        }
        const double* src = scaled + static_cast<std::size_t>(neighbors[e]) * stride;
        for (std::size_t b = 0; b < B; ++b) acc[b] += src[b];
      }
      const double* cur_j = cur + static_cast<std::size_t>(j) * stride;
      double* next_j = next + static_cast<std::size_t>(j) * stride;
      for (std::size_t b = 0; b < B; ++b) {
        next_j[b] = walk_weight * acc[b] + laziness * cur_j[b];
      }
      if (pi != nullptr) {
        const double p = pi[j];
        for (std::size_t b = 0; b < B; ++b) tvd_acc[b] += std::fabs(next_j[b] - p);
      }
    }
    done = r.end;
  }
  if (pi != nullptr) {
    for (graph::NodeId j = done; j < n; ++j) {
      const double p = pi[j];
      for (std::size_t b = 0; b < B; ++b) tvd_acc[b] += p;
    }
    for (std::size_t b = 0; b < B; ++b) tvd_out[b] = 0.5 * tvd_acc[b];
  }
}

// Runtime-width frontier fallback; same operation order as
// frontier_sweep_fixed.
void frontier_sweep_generic(std::span<const graph::RowRange> ranges, graph::NodeId n,
                            const graph::EdgeIndex* offsets, const graph::NodeId* neighbors,
                            const double* scaled, const double* cur, double* next,
                            std::size_t stride, std::size_t lanes, double walk_weight,
                            double laziness, const double* pi, double* tvd_out) {
  std::array<double, kMaxLanes> acc{};
  std::array<double, kMaxLanes> tvd_acc{};
  graph::NodeId done = 0;
  for (const graph::RowRange r : ranges) {
    if (pi != nullptr) {
      for (graph::NodeId j = done; j < r.begin; ++j) {
        const double p = pi[j];
        for (std::size_t b = 0; b < lanes; ++b) tvd_acc[b] += p;
      }
    }
    for (graph::NodeId j = r.begin; j < r.end; ++j) {
      for (std::size_t b = 0; b < lanes; ++b) acc[b] = 0.0;
      const graph::EdgeIndex row_end = offsets[j + 1];
      for (graph::EdgeIndex e = offsets[j]; e < row_end; ++e) {
        if (e + kPrefetchDistance < row_end) {
          util::prefetch_read(
              scaled + static_cast<std::size_t>(neighbors[e + kPrefetchDistance]) * stride);
        }
        const double* src = scaled + static_cast<std::size_t>(neighbors[e]) * stride;
        for (std::size_t b = 0; b < lanes; ++b) acc[b] += src[b];
      }
      const double* cur_j = cur + static_cast<std::size_t>(j) * stride;
      double* next_j = next + static_cast<std::size_t>(j) * stride;
      for (std::size_t b = 0; b < lanes; ++b) {
        next_j[b] = walk_weight * acc[b] + laziness * cur_j[b];
      }
      if (pi != nullptr) {
        const double p = pi[j];
        for (std::size_t b = 0; b < lanes; ++b) tvd_acc[b] += std::fabs(next_j[b] - p);
      }
    }
    done = r.end;
  }
  if (pi != nullptr) {
    for (graph::NodeId j = done; j < n; ++j) {
      const double p = pi[j];
      for (std::size_t b = 0; b < lanes; ++b) tvd_acc[b] += p;
    }
    for (std::size_t b = 0; b < lanes; ++b) tvd_out[b] = 0.5 * tvd_acc[b];
  }
}

// ---------------------------------------------------------------------------
// Mixed precision: f32 state, f64 arithmetic, compensated TVD.

// Neumaier-compensated add: exact for the lost low-order part of each
// term. The branch selects by magnitude only — both arms compute the same
// rounded value the branch-free vector form selects, so scalar and SIMD
// compensation histories are bit-identical.
inline void neumaier_add(double& sum, double& comp, double term) {
  const double t = sum + term;
  if (std::fabs(sum) >= std::fabs(term)) {
    comp += (sum - t) + term;
  } else {
    comp += (term - t) + sum;
  }
  sum = t;
}

// Mixed-precision row sweep over explicit ranges (a dense sweep passes
// the single range [0, n)). Per lane: accumulate the widened f32 gathers
// in f64, combine the affine epilogue in f64, round once to f32 on store,
// and take the TVD term from the *stored* value — so the only deviation
// from the f64 path is state quantization, never arithmetic. Skipped rows
// contribute pi[j] exactly (their stored state is +0.0f), interleaved in
// ascending-row order like the f64 frontier kernels.
template <std::size_t B>
void mixed_sweep_fixed(std::span<const graph::RowRange> ranges, graph::NodeId n,
                       const graph::EdgeIndex* offsets, const graph::NodeId* neighbors,
                       const float* scaled, const float* cur, float* next,
                       std::size_t stride, double walk_weight, double laziness,
                       const double* pi, double* tvd_out) {
  double sum[B];
  double comp[B];
  if (pi != nullptr) {
    for (std::size_t b = 0; b < B; ++b) {
      sum[b] = 0.0;
      comp[b] = 0.0;
    }
  }
  graph::NodeId done = 0;
  for (const graph::RowRange r : ranges) {
    if (pi != nullptr) {
      for (graph::NodeId j = done; j < r.begin; ++j) {
        const double p = pi[j];
        for (std::size_t b = 0; b < B; ++b) neumaier_add(sum[b], comp[b], p);
      }
    }
    for (graph::NodeId j = r.begin; j < r.end; ++j) {
      double acc[B];
      for (std::size_t b = 0; b < B; ++b) acc[b] = 0.0;
      const graph::EdgeIndex row_end = offsets[j + 1];
      for (graph::EdgeIndex e = offsets[j]; e < row_end; ++e) {
        if (e + kPrefetchDistance < row_end) {
          util::prefetch_read(
              scaled + static_cast<std::size_t>(neighbors[e + kPrefetchDistance]) * stride);
        }
        const float* src = scaled + static_cast<std::size_t>(neighbors[e]) * stride;
        for (std::size_t b = 0; b < B; ++b) acc[b] += static_cast<double>(src[b]);
      }
      const float* cur_j = cur + static_cast<std::size_t>(j) * stride;
      float* next_j = next + static_cast<std::size_t>(j) * stride;
      if (pi != nullptr) {
        const double p = pi[j];
        for (std::size_t b = 0; b < B; ++b) {
          const double v =
              walk_weight * acc[b] + laziness * static_cast<double>(cur_j[b]);
          next_j[b] = static_cast<float>(v);
          neumaier_add(sum[b], comp[b],
                       std::fabs(static_cast<double>(next_j[b]) - p));
        }
      } else {
        for (std::size_t b = 0; b < B; ++b) {
          const double v =
              walk_weight * acc[b] + laziness * static_cast<double>(cur_j[b]);
          next_j[b] = static_cast<float>(v);
        }
      }
    }
    done = r.end;
  }
  if (pi != nullptr) {
    for (graph::NodeId j = done; j < n; ++j) {
      const double p = pi[j];
      for (std::size_t b = 0; b < B; ++b) neumaier_add(sum[b], comp[b], p);
    }
    for (std::size_t b = 0; b < B; ++b) tvd_out[b] = 0.5 * (sum[b] + comp[b]);
  }
}

// Runtime-width mixed fallback; same operation order as mixed_sweep_fixed.
void mixed_sweep_generic(std::span<const graph::RowRange> ranges, graph::NodeId n,
                         const graph::EdgeIndex* offsets, const graph::NodeId* neighbors,
                         const float* scaled, const float* cur, float* next,
                         std::size_t stride, std::size_t lanes, double walk_weight,
                         double laziness, const double* pi, double* tvd_out) {
  std::array<double, kMaxLanes> acc{};
  std::array<double, kMaxLanes> sum{};
  std::array<double, kMaxLanes> comp{};
  graph::NodeId done = 0;
  for (const graph::RowRange r : ranges) {
    if (pi != nullptr) {
      for (graph::NodeId j = done; j < r.begin; ++j) {
        const double p = pi[j];
        for (std::size_t b = 0; b < lanes; ++b) neumaier_add(sum[b], comp[b], p);
      }
    }
    for (graph::NodeId j = r.begin; j < r.end; ++j) {
      for (std::size_t b = 0; b < lanes; ++b) acc[b] = 0.0;
      const graph::EdgeIndex row_end = offsets[j + 1];
      for (graph::EdgeIndex e = offsets[j]; e < row_end; ++e) {
        if (e + kPrefetchDistance < row_end) {
          util::prefetch_read(
              scaled + static_cast<std::size_t>(neighbors[e + kPrefetchDistance]) * stride);
        }
        const float* src = scaled + static_cast<std::size_t>(neighbors[e]) * stride;
        for (std::size_t b = 0; b < lanes; ++b) acc[b] += static_cast<double>(src[b]);
      }
      const float* cur_j = cur + static_cast<std::size_t>(j) * stride;
      float* next_j = next + static_cast<std::size_t>(j) * stride;
      if (pi != nullptr) {
        const double p = pi[j];
        for (std::size_t b = 0; b < lanes; ++b) {
          const double v =
              walk_weight * acc[b] + laziness * static_cast<double>(cur_j[b]);
          next_j[b] = static_cast<float>(v);
          neumaier_add(sum[b], comp[b],
                       std::fabs(static_cast<double>(next_j[b]) - p));
        }
      } else {
        for (std::size_t b = 0; b < lanes; ++b) {
          const double v =
              walk_weight * acc[b] + laziness * static_cast<double>(cur_j[b]);
          next_j[b] = static_cast<float>(v);
        }
      }
    }
    done = r.end;
  }
  if (pi != nullptr) {
    for (graph::NodeId j = done; j < n; ++j) {
      const double p = pi[j];
      for (std::size_t b = 0; b < lanes; ++b) neumaier_add(sum[b], comp[b], p);
    }
    for (std::size_t b = 0; b < lanes; ++b) tvd_out[b] = 0.5 * (sum[b] + comp[b]);
  }
}

}  // namespace

void spmm_f64(const SpmmArgs& a, const double* scaled, const double* cur, double* next) {
  if (a.ranges != nullptr) {
    const std::span<const graph::RowRange> ranges{a.ranges, a.num_ranges};
    switch (a.lanes) {
      case 4:
        frontier_sweep_fixed<4>(ranges, a.n, a.offsets, a.neighbors, scaled, cur, next,
                                a.stride, a.walk_weight, a.laziness, a.pi, a.tvd_out);
        break;
      case 8:
        frontier_sweep_fixed<8>(ranges, a.n, a.offsets, a.neighbors, scaled, cur, next,
                                a.stride, a.walk_weight, a.laziness, a.pi, a.tvd_out);
        break;
      case 16:
        frontier_sweep_fixed<16>(ranges, a.n, a.offsets, a.neighbors, scaled, cur, next,
                                 a.stride, a.walk_weight, a.laziness, a.pi, a.tvd_out);
        break;
      case 32:
        frontier_sweep_fixed<32>(ranges, a.n, a.offsets, a.neighbors, scaled, cur, next,
                                 a.stride, a.walk_weight, a.laziness, a.pi, a.tvd_out);
        break;
      default:
        frontier_sweep_generic(ranges, a.n, a.offsets, a.neighbors, scaled, cur, next,
                               a.stride, a.lanes, a.walk_weight, a.laziness, a.pi,
                               a.tvd_out);
        break;
    }
    return;
  }
  switch (a.lanes) {
    case 4:
      sweep_fixed<4>(a.n, a.offsets, a.neighbors, scaled, cur, next, a.stride,
                     a.walk_weight, a.laziness, a.pi, a.tvd_out);
      break;
    case 8:
      sweep_fixed<8>(a.n, a.offsets, a.neighbors, scaled, cur, next, a.stride,
                     a.walk_weight, a.laziness, a.pi, a.tvd_out);
      break;
    case 16:
      sweep_fixed<16>(a.n, a.offsets, a.neighbors, scaled, cur, next, a.stride,
                      a.walk_weight, a.laziness, a.pi, a.tvd_out);
      break;
    case 32:
      sweep_fixed<32>(a.n, a.offsets, a.neighbors, scaled, cur, next, a.stride,
                      a.walk_weight, a.laziness, a.pi, a.tvd_out);
      break;
    default:
      sweep_generic(a.n, a.offsets, a.neighbors, scaled, cur, next, a.stride, a.lanes,
                    a.walk_weight, a.laziness, a.pi, a.tvd_out);
      break;
  }
}

void spmm_mixed(const SpmmArgs& a, const float* scaled, const float* cur, float* next) {
  // The dense sweep is the frontier driver with one full-span range — the
  // per-lane operation sequence is identical either way.
  const graph::RowRange full{0, a.n};
  const std::span<const graph::RowRange> ranges =
      a.ranges != nullptr ? std::span<const graph::RowRange>{a.ranges, a.num_ranges}
                          : std::span<const graph::RowRange>{&full, 1};
  switch (a.lanes) {
    case 4:
      mixed_sweep_fixed<4>(ranges, a.n, a.offsets, a.neighbors, scaled, cur, next,
                           a.stride, a.walk_weight, a.laziness, a.pi, a.tvd_out);
      break;
    case 8:
      mixed_sweep_fixed<8>(ranges, a.n, a.offsets, a.neighbors, scaled, cur, next,
                           a.stride, a.walk_weight, a.laziness, a.pi, a.tvd_out);
      break;
    case 16:
      mixed_sweep_fixed<16>(ranges, a.n, a.offsets, a.neighbors, scaled, cur, next,
                            a.stride, a.walk_weight, a.laziness, a.pi, a.tvd_out);
      break;
    case 32:
      mixed_sweep_fixed<32>(ranges, a.n, a.offsets, a.neighbors, scaled, cur, next,
                            a.stride, a.walk_weight, a.laziness, a.pi, a.tvd_out);
      break;
    default:
      mixed_sweep_generic(ranges, a.n, a.offsets, a.neighbors, scaled, cur, next,
                          a.stride, a.lanes, a.walk_weight, a.laziness, a.pi, a.tvd_out);
      break;
  }
}

void spmv(const SpmvArgs& a, graph::NodeId row_begin, graph::NodeId row_end) {
  const double walk_weight = a.walk_weight;
  const double laziness = a.laziness;
  for (graph::NodeId i = row_begin; i < row_end; ++i) {
    double acc = 0.0;
    const graph::EdgeIndex end = a.offsets[i + 1];
    if (a.edge_scale != nullptr) {
      for (graph::EdgeIndex e = a.offsets[i]; e < end; ++e) {
        if (e + kPrefetchDistance < end) {
          util::prefetch_read(a.gather + a.neighbors[e + kPrefetchDistance]);
        }
        acc += a.edge_scale[e] * a.gather[a.neighbors[e]];
      }
    } else {
      for (graph::EdgeIndex e = a.offsets[i]; e < end; ++e) {
        if (e + kPrefetchDistance < end) {
          util::prefetch_read(a.gather + a.neighbors[e + kPrefetchDistance]);
        }
        acc += a.gather[a.neighbors[e]];
      }
    }
    const double base = walk_weight * acc;
    a.y[i] = (a.row_scale != nullptr ? base * a.row_scale[i] : base) + laziness * a.x[i];
  }
}

void prescale_f64(const double* x, const double* w, double* out, std::size_t begin,
                  std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) out[i] = x[i] * w[i];
}

void prescale_mixed(const float* x, const double* w, float* out, std::size_t begin,
                    std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    out[i] = static_cast<float>(static_cast<double>(x[i]) * w[i]);
  }
}

std::size_t decode_u32(const std::uint8_t* ctrl, const std::uint8_t* data,
                       std::size_t count, std::uint32_t* out) {
  // Portable stream-vbyte decode: the reference the vector tiers must
  // reproduce word for word (pure integer assembly, no rounding anywhere).
  std::size_t pos = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const unsigned len = ((ctrl[i >> 2] >> ((i & 3) * 2)) & 3u) + 1u;
    std::uint32_t v = 0;
    for (unsigned b = 0; b < len; ++b) {
      v |= std::uint32_t{data[pos + b]} << (8 * b);
    }
    out[i] = v;
    pos += len;
  }
  return pos;
}

}  // namespace socmix::linalg::simd::scalar

// ---------------------------------------------------------------------------
// Tier-independent standalone TVD reduction (see kernels.hpp). Lives in
// this TU for its -ffp-contract=off pinning; adds and fabs only, so there
// is exactly one implementation for every tier.

namespace socmix::linalg::simd {

void tvd_f64(const double* state, std::size_t stride, std::size_t lanes,
             const double* pi, graph::NodeId n, double* tvd_out) noexcept {
  std::array<double, kMaxLanes> acc{};
  for (graph::NodeId j = 0; j < n; ++j) {
    const double p = pi[j];
    const double* row = state + static_cast<std::size_t>(j) * stride;
    for (std::size_t b = 0; b < lanes; ++b) acc[b] += std::fabs(row[b] - p);
  }
  for (std::size_t b = 0; b < lanes; ++b) tvd_out[b] = 0.5 * acc[b];
}

void tvd_mixed(const float* state, std::size_t stride, std::size_t lanes,
               const double* pi, graph::NodeId n, double* tvd_out) noexcept {
  // Same magnitude-branch compensation as the fused mixed kernels.
  const auto compensated_add = [](double& sum, double& comp, double term) {
    const double t = sum + term;
    if (std::fabs(sum) >= std::fabs(term)) {
      comp += (sum - t) + term;
    } else {
      comp += (term - t) + sum;
    }
    sum = t;
  };
  std::array<double, kMaxLanes> sum{};
  std::array<double, kMaxLanes> comp{};
  for (graph::NodeId j = 0; j < n; ++j) {
    const double p = pi[j];
    const float* row = state + static_cast<std::size_t>(j) * stride;
    for (std::size_t b = 0; b < lanes; ++b) {
      compensated_add(sum[b], comp[b], std::fabs(static_cast<double>(row[b]) - p));
    }
  }
  for (std::size_t b = 0; b < lanes; ++b) tvd_out[b] = 0.5 * (sum[b] + comp[b]);
}

}  // namespace socmix::linalg::simd
