// AVX-512 kernel tier: 512-bit vertical ops (8 doubles) + i32 gathers.
// Compiled with -mavx2 -mavx512f -mavx512dq -ffp-contract=off (see
// src/linalg/CMakeLists.txt); only reached when dispatch.cpp probed
// AVX-512 support at runtime. All shared logic lives in kernels_body.inc
// — this TU only binds the vector primitives.

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <span>

#include "linalg/simd/kernels_detail.hpp"
#include "util/prefetch.hpp"

#if !defined(SOCMIX_SIMD_HAVE_AVX512)
#error "kernels_avx512.cpp requires SOCMIX_SIMD_HAVE_AVX512 (see src/linalg/CMakeLists.txt)"
#endif

namespace socmix::linalg::simd::avx512 {

namespace {

using vd = __m512d;
constexpr std::size_t kW = 8;

inline vd vd_zero() noexcept { return _mm512_setzero_pd(); }
inline vd vd_loadu(const double* p) noexcept { return _mm512_loadu_pd(p); }
inline void vd_storeu(double* p, vd v) noexcept { _mm512_storeu_pd(p, v); }
inline vd vd_set1(double x) noexcept { return _mm512_set1_pd(x); }
inline vd vd_add(vd a, vd b) noexcept { return _mm512_add_pd(a, b); }
inline vd vd_sub(vd a, vd b) noexcept { return _mm512_sub_pd(a, b); }
inline vd vd_mul(vd a, vd b) noexcept { return _mm512_mul_pd(a, b); }
inline vd vd_abs(vd v) noexcept {
  return _mm512_castsi512_pd(_mm512_and_epi64(
      _mm512_castpd_si512(v), _mm512_set1_epi64(INT64_C(0x7fffffffffffffff))));
}
inline vd vd_select_ge_abs(vd s, vd t, vd x, vd y) noexcept {
  const __mmask8 m = _mm512_cmp_pd_mask(vd_abs(s), vd_abs(t), _CMP_GE_OQ);
  return _mm512_mask_blend_pd(m, y, x);
}
inline vd vd_cvt_f32_loadu(const float* p) noexcept {
  return _mm512_cvtps_pd(_mm256_loadu_ps(p));
}
inline vd vd_roundtrip_store_f32(float* p, vd v) noexcept {
  const __m256 f = _mm512_cvtpd_ps(v);
  _mm256_storeu_ps(p, f);
  return _mm512_cvtps_pd(f);
}
// i32 gather: sign-extends the u32 node ids, so it requires
// num_nodes < 2^31 (see kernels.hpp).
inline vd vd_gather_i32(const double* base, const graph::NodeId* idx) noexcept {
  return _mm512_i32gather_pd(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx)), base, 8);
}

}  // namespace

#include "linalg/simd/kernels_body.inc"

}  // namespace socmix::linalg::simd::avx512
