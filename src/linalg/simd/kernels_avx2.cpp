// AVX2 kernel tier: 256-bit vertical ops (4 doubles) + i32 gathers.
// Compiled with -mavx2 -ffp-contract=off (see src/linalg/CMakeLists.txt);
// only reached when dispatch.cpp probed AVX2 support at runtime. All
// shared logic lives in kernels_body.inc — this TU only binds the vector
// primitives.

#include <immintrin.h>

#include <cstddef>
#include <span>

#include "linalg/simd/kernels_detail.hpp"
#include "util/prefetch.hpp"

#if !defined(SOCMIX_SIMD_HAVE_AVX2)
#error "kernels_avx2.cpp requires SOCMIX_SIMD_HAVE_AVX2 (see src/linalg/CMakeLists.txt)"
#endif

namespace socmix::linalg::simd::avx2 {

namespace {

using vd = __m256d;
constexpr std::size_t kW = 4;

inline vd vd_zero() noexcept { return _mm256_setzero_pd(); }
inline vd vd_loadu(const double* p) noexcept { return _mm256_loadu_pd(p); }
inline void vd_storeu(double* p, vd v) noexcept { _mm256_storeu_pd(p, v); }
inline vd vd_set1(double x) noexcept { return _mm256_set1_pd(x); }
inline vd vd_add(vd a, vd b) noexcept { return _mm256_add_pd(a, b); }
inline vd vd_sub(vd a, vd b) noexcept { return _mm256_sub_pd(a, b); }
inline vd vd_mul(vd a, vd b) noexcept { return _mm256_mul_pd(a, b); }
inline vd vd_abs(vd v) noexcept {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}
inline vd vd_select_ge_abs(vd s, vd t, vd x, vd y) noexcept {
  const vd m = _mm256_cmp_pd(vd_abs(s), vd_abs(t), _CMP_GE_OQ);
  return _mm256_blendv_pd(y, x, m);
}
inline vd vd_cvt_f32_loadu(const float* p) noexcept {
  return _mm256_cvtps_pd(_mm_loadu_ps(p));
}
inline vd vd_roundtrip_store_f32(float* p, vd v) noexcept {
  const __m128 f = _mm256_cvtpd_ps(v);
  _mm_storeu_ps(p, f);
  return _mm256_cvtps_pd(f);
}
// i32 gather: sign-extends the u32 node ids, so it requires
// num_nodes < 2^31 (see kernels.hpp). The masked form with an all-ones
// mask is the same instruction but gives the source operand a defined
// value (the unmasked intrinsic's _mm256_undefined_pd trips
// -Wmaybe-uninitialized under -Werror).
inline vd vd_gather_i32(const double* base, const graph::NodeId* idx) noexcept {
  const vd ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  return _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), base,
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx)), ones, 8);
}

}  // namespace

#include "linalg/simd/kernels_body.inc"

namespace {

// Stream-vbyte decode tables: for each control byte, the pshufb mask that
// scatters its four variable-length little-endian values into four u32
// slots (0x80 lanes zero the unused high bytes) and the total data bytes
// the quad consumes.
struct VbyteTables {
  alignas(16) std::uint8_t shuffle[256][16];
  std::uint8_t length[256];
};

constexpr VbyteTables make_vbyte_tables() {
  VbyteTables t{};
  for (unsigned c = 0; c < 256; ++c) {
    unsigned src = 0;
    for (unsigned lane = 0; lane < 4; ++lane) {
      const unsigned len = ((c >> (2 * lane)) & 3u) + 1u;
      for (unsigned b = 0; b < 4; ++b) {
        t.shuffle[c][lane * 4 + b] =
            b < len ? static_cast<std::uint8_t>(src + b) : std::uint8_t{0x80};
      }
      src += len;
    }
    t.length[c] = static_cast<std::uint8_t>(src);
  }
  return t;
}

constexpr VbyteTables kVbyte = make_vbyte_tables();

}  // namespace

std::size_t decode_u32(const std::uint8_t* ctrl, const std::uint8_t* data,
                       std::size_t count, std::uint32_t* out) {
  std::size_t pos = 0;
  std::size_t i = 0;
  // One 16-byte load + pshufb per quad of values. The load may overrun the
  // final value's data bytes by up to 15 — covered by the caller's 16-byte
  // slack guarantee (kernels.hpp). Integer moves only, so the output words
  // match scalar::decode_u32 exactly.
  for (; i + 4 <= count; i += 4) {
    const unsigned c = ctrl[i >> 2];
    const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + pos));
    const __m128i shuf =
        _mm_load_si128(reinterpret_cast<const __m128i*>(kVbyte.shuffle[c]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_shuffle_epi8(raw, shuf));
    pos += kVbyte.length[c];
  }
  for (; i < count; ++i) {
    const unsigned len = ((ctrl[i >> 2] >> ((i & 3) * 2)) & 3u) + 1u;
    std::uint32_t v = 0;
    for (unsigned b = 0; b < len; ++b) {
      v |= std::uint32_t{data[pos + b]} << (8 * b);
    }
    out[i] = v;
    pos += len;
  }
  return pos;
}

}  // namespace socmix::linalg::simd::avx2
