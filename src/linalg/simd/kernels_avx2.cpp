// AVX2 kernel tier: 256-bit vertical ops (4 doubles) + i32 gathers.
// Compiled with -mavx2 -ffp-contract=off (see src/linalg/CMakeLists.txt);
// only reached when dispatch.cpp probed AVX2 support at runtime. All
// shared logic lives in kernels_body.inc — this TU only binds the vector
// primitives.

#include <immintrin.h>

#include <cstddef>
#include <span>

#include "linalg/simd/kernels_detail.hpp"
#include "util/prefetch.hpp"

#if !defined(SOCMIX_SIMD_HAVE_AVX2)
#error "kernels_avx2.cpp requires SOCMIX_SIMD_HAVE_AVX2 (see src/linalg/CMakeLists.txt)"
#endif

namespace socmix::linalg::simd::avx2 {

namespace {

using vd = __m256d;
constexpr std::size_t kW = 4;

inline vd vd_zero() noexcept { return _mm256_setzero_pd(); }
inline vd vd_loadu(const double* p) noexcept { return _mm256_loadu_pd(p); }
inline void vd_storeu(double* p, vd v) noexcept { _mm256_storeu_pd(p, v); }
inline vd vd_set1(double x) noexcept { return _mm256_set1_pd(x); }
inline vd vd_add(vd a, vd b) noexcept { return _mm256_add_pd(a, b); }
inline vd vd_sub(vd a, vd b) noexcept { return _mm256_sub_pd(a, b); }
inline vd vd_mul(vd a, vd b) noexcept { return _mm256_mul_pd(a, b); }
inline vd vd_abs(vd v) noexcept {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}
inline vd vd_select_ge_abs(vd s, vd t, vd x, vd y) noexcept {
  const vd m = _mm256_cmp_pd(vd_abs(s), vd_abs(t), _CMP_GE_OQ);
  return _mm256_blendv_pd(y, x, m);
}
inline vd vd_cvt_f32_loadu(const float* p) noexcept {
  return _mm256_cvtps_pd(_mm_loadu_ps(p));
}
inline vd vd_roundtrip_store_f32(float* p, vd v) noexcept {
  const __m128 f = _mm256_cvtpd_ps(v);
  _mm_storeu_ps(p, f);
  return _mm256_cvtps_pd(f);
}
// i32 gather: sign-extends the u32 node ids, so it requires
// num_nodes < 2^31 (see kernels.hpp). The masked form with an all-ones
// mask is the same instruction but gives the source operand a defined
// value (the unmasked intrinsic's _mm256_undefined_pd trips
// -Wmaybe-uninitialized under -Werror).
inline vd vd_gather_i32(const double* base, const graph::NodeId* idx) noexcept {
  const vd ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  return _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), base,
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx)), ones, 8);
}

}  // namespace

#include "linalg/simd/kernels_body.inc"

}  // namespace socmix::linalg::simd::avx2
