// The symmetrized random-walk operator N = D^{-1/2} A D^{-1/2}.
//
// The paper's SLEM is defined on the row-stochastic transition matrix
// P = D^{-1} A, which is not symmetric. N = D^{1/2} P D^{-1/2} is symmetric
// and *similar* to P, so it has exactly the same (real) eigenvalues — this
// is what lets us run symmetric Lanczos and still obtain the paper's mu.
// Eigenvalue 1 of N has the known eigenvector D^{1/2} * 1 (normalized),
// which the eigensolvers deflate analytically.
//
// A lazy-walk variant (I + N)/2 is provided for graphs whose simple walk is
// periodic (bipartite components), mirroring the standard lazy chain
// (I + P)/2 whose spectrum is the affine map (1 + lambda)/2.
#pragma once

#include <span>
#include <vector>

#include "graph/frontier.hpp"
#include "graph/graph.hpp"

namespace socmix::linalg {

/// Matrix-free symmetric operator for a graph's normalized adjacency.
/// Requires a graph with no isolated vertices (degree >= 1 everywhere);
/// the measurement pipeline guarantees this by extracting the largest
/// connected component first.
class WalkOperator {
 public:
  /// laziness alpha in [0, 1): the operator is (1-alpha) N + alpha I.
  /// alpha = 0 is the simple walk; alpha = 0.5 the standard lazy walk.
  explicit WalkOperator(const graph::Graph& g, double laziness = 0.0);

  /// y = Op * x. x and y must have size dim() and not alias. Rows are
  /// partitioned across the util::parallel pool; the gather formulation
  /// keeps the result bit-identical for any thread count. Uses an internal
  /// scratch buffer (the pre-scaled source vector), so concurrent apply()
  /// calls on the *same* operator are not allowed — concurrent operators
  /// on one graph are fine.
  void apply(std::span<const double> x, std::span<double> y) const;

  /// Frontier variant of apply(): computes y[i] for the rows inside
  /// `ranges` (sorted, disjoint — typically graph::FrontierSet::ranges())
  /// with the identical full-row gather, and leaves every other row of y
  /// untouched. The prescale still streams all of x (gather sources are
  /// unrestricted), so the saving is the skipped row gathers. Bit-identical
  /// to apply() on the covered rows. Same scratch caveat as apply().
  void apply_rows(std::span<const double> x, std::span<double> y,
                  std::span<const graph::RowRange> ranges) const;

  /// Minimum rows per parallel chunk: below this, dispatch overhead beats
  /// the work, so small graphs run inline on the calling thread.
  static constexpr std::size_t kApplyGrain = 2048;

  [[nodiscard]] std::size_t dim() const noexcept { return inv_sqrt_deg_.size(); }

  [[nodiscard]] double laziness() const noexcept { return laziness_; }

  /// Unit-norm eigenvector of eigenvalue 1: (D^{1/2} 1) / ||D^{1/2} 1||,
  /// i.e. v1[i] = sqrt(deg(i) / 2m). Valid for any laziness.
  [[nodiscard]] std::vector<double> top_eigenvector() const;

  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }

  /// Maps an eigenvalue of the *simple* operator to this operator's:
  /// lambda -> (1-alpha) lambda + alpha.
  [[nodiscard]] double map_eigenvalue(double simple_lambda) const noexcept {
    return (1.0 - laziness_) * simple_lambda + laziness_;
  }

 private:
  const graph::Graph* graph_;
  std::vector<double> inv_sqrt_deg_;
  /// apply() scratch: the pre-scaled source x[j] * inv_sqrt_deg_[j], so
  /// the edge loop is a single gather. Sized n at construction.
  mutable std::vector<double> scaled_;
  double laziness_;
};

}  // namespace socmix::linalg
