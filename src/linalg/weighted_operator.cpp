#include "linalg/weighted_operator.hpp"

#include <cmath>
#include <stdexcept>

namespace socmix::linalg {

WeightedWalkOperator::WeightedWalkOperator(const graph::WeightedGraph& g, double laziness)
    : graph_(&g), laziness_(laziness) {
  if (laziness < 0.0 || laziness >= 1.0) {
    throw std::invalid_argument{"WeightedWalkOperator: laziness must be in [0, 1)"};
  }
  const graph::NodeId n = g.num_nodes();
  inv_sqrt_strength_.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    const double s = g.strength(v);
    if (s <= 0.0) {
      throw std::invalid_argument{
          "WeightedWalkOperator: isolated vertex (zero strength)"};
    }
    inv_sqrt_strength_[v] = 1.0 / std::sqrt(s);
  }
  // Fold the source-side normalization into the edge weights once:
  // edge_scaled_[e] = w_e / sqrt(strength(neighbor(e))). The apply loop
  // then issues one gather (x[j]) plus a streaming read of edge_scaled_
  // instead of gathering inv_sqrt_strength_[j] per edge as well.
  const auto neighbors = g.raw_neighbors();
  const auto weights = g.raw_weights();
  edge_scaled_.resize(weights.size());
  for (graph::EdgeIndex e = 0; e < weights.size(); ++e) {
    edge_scaled_[e] = weights[e] * inv_sqrt_strength_[neighbors[e]];
  }
}

void WeightedWalkOperator::apply(std::span<const double> x,
                                 std::span<double> y) const noexcept {
  const graph::WeightedGraph& g = *graph_;
  const graph::NodeId n = g.num_nodes();
  const auto offsets = g.offsets();
  const auto neighbors = g.raw_neighbors();
  const double walk_weight = 1.0 - laziness_;
  const double* edge_scaled = edge_scaled_.data();

  for (graph::NodeId i = 0; i < n; ++i) {
    double acc = 0.0;
    for (graph::EdgeIndex e = offsets[i]; e < offsets[i + 1]; ++e) {
      acc += edge_scaled[e] * x[neighbors[e]];
    }
    y[i] = walk_weight * acc * inv_sqrt_strength_[i] + laziness_ * x[i];
  }
}

void WeightedWalkOperator::apply_rows(std::span<const double> x, std::span<double> y,
                                      std::span<const graph::RowRange> ranges) const noexcept {
  const graph::WeightedGraph& g = *graph_;
  const auto offsets = g.offsets();
  const auto neighbors = g.raw_neighbors();
  const double walk_weight = 1.0 - laziness_;
  const double* edge_scaled = edge_scaled_.data();

  for (const graph::RowRange r : ranges) {
    for (graph::NodeId i = r.begin; i < r.end; ++i) {
      double acc = 0.0;
      for (graph::EdgeIndex e = offsets[i]; e < offsets[i + 1]; ++e) {
        acc += edge_scaled[e] * x[neighbors[e]];
      }
      y[i] = walk_weight * acc * inv_sqrt_strength_[i] + laziness_ * x[i];
    }
  }
}

std::vector<double> WeightedWalkOperator::top_eigenvector() const {
  const auto n = dim();
  const double total = graph_->total_strength();
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 1.0 / (inv_sqrt_strength_[i] * std::sqrt(total));
  }
  return v;
}

}  // namespace socmix::linalg
