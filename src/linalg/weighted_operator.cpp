#include "linalg/weighted_operator.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/simd/kernels.hpp"

namespace socmix::linalg {

WeightedWalkOperator::WeightedWalkOperator(const graph::WeightedGraph& g, double laziness)
    : graph_(&g), laziness_(laziness) {
  if (laziness < 0.0 || laziness >= 1.0) {
    throw std::invalid_argument{"WeightedWalkOperator: laziness must be in [0, 1)"};
  }
  const graph::NodeId n = g.num_nodes();
  inv_sqrt_strength_.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    const double s = g.strength(v);
    if (s <= 0.0) {
      throw std::invalid_argument{
          "WeightedWalkOperator: isolated vertex (zero strength)"};
    }
    inv_sqrt_strength_[v] = 1.0 / std::sqrt(s);
  }
  // Fold the source-side normalization into the edge weights once:
  // edge_scaled_[e] = w_e / sqrt(strength(neighbor(e))). The apply loop
  // then issues one gather (x[j]) plus a streaming read of edge_scaled_
  // instead of gathering inv_sqrt_strength_[j] per edge as well.
  const auto neighbors = g.raw_neighbors();
  const auto weights = g.raw_weights();
  edge_scaled_.resize(weights.size());
  for (graph::EdgeIndex e = 0; e < weights.size(); ++e) {
    edge_scaled_[e] = weights[e] * inv_sqrt_strength_[neighbors[e]];
  }
}

void WeightedWalkOperator::apply(std::span<const double> x,
                                 std::span<double> y) const noexcept {
  const graph::WeightedGraph& g = *graph_;
  const graph::NodeId n = g.num_nodes();

  // Gather-stream kernel via the simd dispatch table: one gather of x per
  // edge plus a streaming read of the folded edge weights; every tier
  // sums edges in CSR order, so tier choice never changes a bit.
  simd::SpmvArgs args;
  args.offsets = g.offsets().data();
  args.neighbors = g.raw_neighbors().data();
  args.gather = x.data();
  args.x = x.data();
  args.y = y.data();
  args.walk_weight = 1.0 - laziness_;
  args.laziness = laziness_;
  args.row_scale = inv_sqrt_strength_.data();
  args.edge_scale = edge_scaled_.data();
  simd::dispatch().spmv(args, 0, n);
}

void WeightedWalkOperator::apply_rows(std::span<const double> x, std::span<double> y,
                                      std::span<const graph::RowRange> ranges) const noexcept {
  const graph::WeightedGraph& g = *graph_;

  simd::SpmvArgs args;
  args.offsets = g.offsets().data();
  args.neighbors = g.raw_neighbors().data();
  args.gather = x.data();
  args.x = x.data();
  args.y = y.data();
  args.walk_weight = 1.0 - laziness_;
  args.laziness = laziness_;
  args.row_scale = inv_sqrt_strength_.data();
  args.edge_scale = edge_scaled_.data();
  const simd::KernelTable& kernels = simd::dispatch();
  for (const graph::RowRange r : ranges) {
    kernels.spmv(args, r.begin, r.end);
  }
}

std::vector<double> WeightedWalkOperator::top_eigenvector() const {
  const auto n = dim();
  const double total = graph_->total_strength();
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 1.0 / (inv_sqrt_strength_[i] * std::sqrt(total));
  }
  return v;
}

}  // namespace socmix::linalg
