#include "linalg/sharded_walk_operator.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/simd/kernels.hpp"
#include "linalg/walk_operator.hpp"
#include "obs/obs.hpp"
#include "util/parallel.hpp"

namespace socmix::linalg {

ShardedWalkOperator::ShardedWalkOperator(const graph::Graph& g, graph::ShardPlan plan,
                                         double laziness,
                                         const graph::sharded::MappedGraph* mapped,
                                         IoMode io_mode)
    : graph_(&g), mapped_(mapped), plan_(std::move(plan)), laziness_(laziness) {
  if (laziness < 0.0 || laziness >= 1.0) {
    throw std::invalid_argument{"ShardedWalkOperator: laziness must be in [0, 1)"};
  }
  if (plan_.dim() != g.num_nodes() || plan_.num_shards() == 0) {
    throw std::invalid_argument{"ShardedWalkOperator: plan does not cover the graph"};
  }
  const graph::NodeId n = g.num_nodes();
  inv_sqrt_deg_.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    const graph::NodeId d = g.degree(v);
    if (d == 0) {
      throw std::invalid_argument{
          "ShardedWalkOperator: graph has an isolated vertex; extract the largest "
          "connected component first"};
    }
    inv_sqrt_deg_[v] = 1.0 / std::sqrt(static_cast<double>(d));
  }
  scaled_.resize(n);
  pipeline_ = std::make_unique<ShardPipeline>(g, plan_, mapped_, io_mode);
}

void ShardedWalkOperator::apply(std::span<const double> x, std::span<double> y) const {
  SOCMIX_TRACE_SPAN("spmv.apply_sharded");
  const graph::Graph& g = *graph_;
  const graph::NodeId n = g.num_nodes();
  SOCMIX_COUNTER_ADD("linalg.spmv.applies", 1);
  SOCMIX_COUNTER_ADD("linalg.spmv.rows", n);
  SOCMIX_COUNTER_ADD("linalg.spmv.sharded_applies", 1);
  const double walk_weight = 1.0 - laziness_;

  // Identical prescale + per-row kernel as WalkOperator::apply; only the
  // outer row order is grouped by shard, which no row's result depends on.
  double* const scaled = scaled_.data();
  const simd::KernelTable& kernels = simd::dispatch();
  util::parallel_for(0, n, WalkOperator::kApplyGrain,
                     [&](std::size_t lo, std::size_t hi) {
                       kernels.prescale_f64(x.data(), inv_sqrt_deg_.data(), scaled, lo, hi);
                     });
  simd::SpmvArgs base;
  base.gather = scaled;
  base.x = x.data();
  base.y = y.data();
  base.walk_weight = walk_weight;
  base.laziness = laziness_;
  base.row_scale = inv_sqrt_deg_.data();

  const std::uint32_t shards = plan_.num_shards();
  for (std::uint32_t s = 0; s < shards; ++s) {
    const ShardWindow w = pipeline_->acquire(s);
    simd::SpmvArgs args = base;
    if (w.local) {
      // Decoded window: local offsets index the scratch neighbors, and
      // every per-row pointer is rebased by w.begin so row j of the
      // kernel is absolute row w.begin + j. The gather source stays
      // absolute (neighbor ids are absolute), so the per-row FP sequence
      // is identical to the uncompressed sweep.
      args.offsets = w.offsets;
      args.neighbors = w.neighbors;
      args.x = x.data() + w.begin;
      args.y = y.data() + w.begin;
      args.row_scale = inv_sqrt_deg_.data() + w.begin;
      util::parallel_for(0, w.end - w.begin, WalkOperator::kApplyGrain,
                         [&](std::size_t row_lo, std::size_t row_hi) {
                           kernels.spmv(args, static_cast<graph::NodeId>(row_lo),
                                        static_cast<graph::NodeId>(row_hi));
                         });
    } else {
      args.offsets = w.offsets;
      args.neighbors = w.neighbors;
      util::parallel_for(w.begin, w.end, WalkOperator::kApplyGrain,
                         [&](std::size_t row_lo, std::size_t row_hi) {
                           kernels.spmv(args, static_cast<graph::NodeId>(row_lo),
                                        static_cast<graph::NodeId>(row_hi));
                         });
    }
  }
  pipeline_->finish_sweep();
}

std::vector<double> ShardedWalkOperator::top_eigenvector() const {
  const auto n = dim();
  const double two_m = static_cast<double>(graph_->num_half_edges());
  const double sqrt_two_m = std::sqrt(two_m);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 1.0 / (inv_sqrt_deg_[i] * sqrt_two_m);
  }
  return v;
}

}  // namespace socmix::linalg
