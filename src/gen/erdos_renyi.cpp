#include "gen/erdos_renyi.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace socmix::gen {

using graph::EdgeList;
using graph::Graph;
using graph::NodeId;

Graph erdos_renyi_gnm(NodeId n, std::uint64_t m, util::Rng& rng) {
  const std::uint64_t max_edges = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  if (n < 2 || m > max_edges) {
    throw std::invalid_argument{"erdos_renyi_gnm: need n >= 2 and m <= n(n-1)/2"};
  }
  EdgeList edges{n};
  edges.reserve(m);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    auto u = static_cast<NodeId>(rng.below(n));
    auto v = static_cast<NodeId>(rng.below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) edges.add(u, v);
  }
  return Graph::from_edges(std::move(edges));
}

Graph erdos_renyi_gnp(NodeId n, double p, util::Rng& rng) {
  if (n < 2 || p < 0.0 || p > 1.0) {
    throw std::invalid_argument{"erdos_renyi_gnp: need n >= 2 and p in [0,1]"};
  }
  EdgeList edges{n};
  if (p == 0.0) return Graph::from_edges(std::move(edges));
  if (p == 1.0) {
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = u + 1; v < n; ++v) edges.add(u, v);
    return Graph::from_edges(std::move(edges));
  }

  // Batagelj-Brandes geometric skipping over the upper-triangle order.
  const double log_1mp = std::log(1.0 - p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  while (v < static_cast<std::int64_t>(n)) {
    const double r = 1.0 - rng.uniform();  // (0, 1]
    w += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / log_1mp));
    while (w >= v && v < static_cast<std::int64_t>(n)) {
      w -= v;
      ++v;
    }
    if (v < static_cast<std::int64_t>(n)) {
      edges.add(static_cast<NodeId>(w), static_cast<NodeId>(v));
    }
  }
  return Graph::from_edges(std::move(edges));
}

}  // namespace socmix::gen
