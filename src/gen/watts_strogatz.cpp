#include "gen/watts_strogatz.hpp"

#include <stdexcept>
#include <unordered_set>

namespace socmix::gen {

using graph::EdgeList;
using graph::Graph;
using graph::NodeId;

Graph watts_strogatz(NodeId n, NodeId k, double beta, util::Rng& rng) {
  if (k < 2 || k % 2 != 0 || n <= k || beta < 0.0 || beta > 1.0) {
    throw std::invalid_argument{
        "watts_strogatz: need n > k >= 2, k even, beta in [0,1]"};
  }

  // Edge set keyed canonically so rewiring can avoid duplicates.
  std::unordered_set<std::uint64_t> edge_keys;
  edge_keys.reserve(static_cast<std::size_t>(n) * k);
  const auto key = [](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };

  for (NodeId v = 0; v < n; ++v) {
    for (NodeId j = 1; j <= k / 2; ++j) {
      edge_keys.insert(key(v, (v + j) % n));
    }
  }

  // Rewire each original lattice edge (v, v+j) with probability beta by
  // replacing its far endpoint with a uniform vertex.
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId j = 1; j <= k / 2; ++j) {
      const NodeId w = (v + j) % n;
      if (!rng.chance(beta)) continue;
      const std::uint64_t old_key = key(v, w);
      if (!edge_keys.contains(old_key)) continue;  // already rewired away
      // Find a fresh endpoint; bail out after a bounded number of tries
      // (possible only in extremely dense corners).
      for (int attempt = 0; attempt < 32; ++attempt) {
        const auto t = static_cast<NodeId>(rng.below(n));
        if (t == v) continue;
        const std::uint64_t new_key = key(v, t);
        if (edge_keys.contains(new_key)) continue;
        edge_keys.erase(old_key);
        edge_keys.insert(new_key);
        break;
      }
    }
  }

  EdgeList edges{n};
  edges.reserve(edge_keys.size());
  for (const std::uint64_t e : edge_keys) {
    edges.add(static_cast<NodeId>(e >> 32), static_cast<NodeId>(e & 0xffffffffULL));
  }
  return Graph::from_edges(std::move(edges));
}

}  // namespace socmix::gen
