// Erdős–Rényi random graphs: G(n, m) and G(n, p).
//
// Above the connectivity threshold these are excellent expanders — the
// "fast mixing" end of the spectrum against which the paper's social
// graphs are contrasted.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace socmix::gen {

/// G(n, m): exactly m distinct uniform edges (after discarding collisions
/// m is exact; requires m <= n(n-1)/2).
[[nodiscard]] graph::Graph erdos_renyi_gnm(graph::NodeId n, std::uint64_t m, util::Rng& rng);

/// G(n, p): each pair independently with probability p. Uses geometric
/// skipping, O(n + m) expected time, so sparse graphs are cheap.
[[nodiscard]] graph::Graph erdos_renyi_gnp(graph::NodeId n, double p, util::Rng& rng);

}  // namespace socmix::gen
