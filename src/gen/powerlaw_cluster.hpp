// Holme–Kim power-law graphs with tunable clustering.
//
// Collaboration networks (DBLP, physics co-authorship) combine power-law
// degrees with very high clustering — triangles everywhere — which is what
// BA alone lacks. Holme-Kim adds a "triad formation" step: after each
// preferential attachment, with probability p_triangle the next link closes
// a triangle with a neighbor of the previous target. High p_triangle
// produces the locally-dense, globally-sparse structure that mixes slowly.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace socmix::gen {

/// Holme-Kim model: n vertices, `attach` links per new vertex, triad
/// formation probability p_triangle in [0, 1].
/// Requires n > attach >= 1.
[[nodiscard]] graph::Graph powerlaw_cluster(graph::NodeId n, graph::NodeId attach,
                                            double p_triangle, util::Rng& rng);

}  // namespace socmix::gen
