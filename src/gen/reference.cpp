#include "gen/reference.hpp"

#include <stdexcept>

namespace socmix::gen {

using graph::EdgeList;
using graph::Graph;
using graph::NodeId;

Graph complete(NodeId n) {
  if (n < 2) throw std::invalid_argument{"complete: need n >= 2"};
  EdgeList edges{n};
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) edges.add(u, v);
  return Graph::from_edges(std::move(edges));
}

Graph cycle(NodeId n) {
  if (n < 3) throw std::invalid_argument{"cycle: need n >= 3"};
  EdgeList edges{n};
  for (NodeId v = 0; v < n; ++v) edges.add(v, (v + 1) % n);
  return Graph::from_edges(std::move(edges));
}

Graph path(NodeId n) {
  if (n < 2) throw std::invalid_argument{"path: need n >= 2"};
  EdgeList edges{n};
  for (NodeId v = 0; v + 1 < n; ++v) edges.add(v, v + 1);
  return Graph::from_edges(std::move(edges));
}

Graph star(NodeId n) {
  if (n < 2) throw std::invalid_argument{"star: need n >= 2"};
  EdgeList edges{n};
  for (NodeId v = 1; v < n; ++v) edges.add(0, v);
  return Graph::from_edges(std::move(edges));
}

Graph complete_bipartite(NodeId a, NodeId b) {
  if (a < 1 || b < 1) throw std::invalid_argument{"complete_bipartite: need a,b >= 1"};
  EdgeList edges{static_cast<NodeId>(a + b)};
  for (NodeId u = 0; u < a; ++u)
    for (NodeId v = 0; v < b; ++v) edges.add(u, a + v);
  return Graph::from_edges(std::move(edges));
}

Graph hypercube(unsigned d) {
  if (d < 1 || d > 24) throw std::invalid_argument{"hypercube: need 1 <= d <= 24"};
  const NodeId n = NodeId{1} << d;
  EdgeList edges{n};
  for (NodeId v = 0; v < n; ++v) {
    for (unsigned bit = 0; bit < d; ++bit) {
      const NodeId w = v ^ (NodeId{1} << bit);
      if (v < w) edges.add(v, w);
    }
  }
  return Graph::from_edges(std::move(edges));
}

Graph circulant(NodeId n, NodeId d) {
  if (d % 2 != 0 || d == 0 || n <= d) {
    throw std::invalid_argument{"circulant: need even d >= 2 and n > d"};
  }
  EdgeList edges{n};
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId k = 1; k <= d / 2; ++k) edges.add(v, (v + k) % n);
  }
  return Graph::from_edges(std::move(edges));
}

Graph dumbbell(NodeId k, NodeId bridges) {
  if (k < 2 || bridges < 1 || bridges > k) {
    throw std::invalid_argument{"dumbbell: need k >= 2 and 1 <= bridges <= k"};
  }
  EdgeList edges{static_cast<NodeId>(2 * k)};
  for (NodeId u = 0; u < k; ++u) {
    for (NodeId v = u + 1; v < k; ++v) {
      edges.add(u, v);
      edges.add(k + u, k + v);
    }
  }
  for (NodeId b = 0; b < bridges; ++b) edges.add(b, k + b);
  return Graph::from_edges(std::move(edges));
}

}  // namespace socmix::gen
