#include "gen/configuration.hpp"

#include <unordered_set>
#include <vector>

namespace socmix::gen {

using graph::EdgeList;
using graph::Graph;
using graph::NodeId;

namespace {
[[nodiscard]] std::uint64_t edge_key(NodeId a, NodeId b) noexcept {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}
}  // namespace

Graph configuration_model(std::span<const graph::NodeId> degrees, util::Rng& rng) {
  // Build the stub multiset: one entry per half-edge.
  std::vector<NodeId> stubs;
  const auto n = static_cast<NodeId>(degrees.size());
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId d = 0; d < degrees[v]; ++d) stubs.push_back(v);
  }
  if (stubs.size() % 2 == 1) stubs.pop_back();
  util::shuffle(stubs.begin(), stubs.end(), rng);

  EdgeList edges{static_cast<NodeId>(degrees.size())};
  edges.reserve(stubs.size() / 2);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    edges.add(stubs[i], stubs[i + 1]);  // loops/dupes erased by from_edges
  }
  return Graph::from_edges(std::move(edges));
}

Graph configuration_null(const Graph& g, util::Rng& rng) {
  std::vector<NodeId> degrees(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) degrees[v] = g.degree(v);
  return configuration_model(degrees, rng);
}

Graph degree_preserving_rewire(const Graph& g, std::uint64_t swaps, util::Rng& rng) {
  // Mutable edge array + membership set for O(1) duplicate checks.
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.num_edges());
  std::unordered_set<std::uint64_t> present;
  present.reserve(g.num_edges() * 2);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) {
        edges.emplace_back(u, v);
        present.insert(edge_key(u, v));
      }
    }
  }
  if (edges.size() < 2) {
    EdgeList unchanged{g.num_nodes()};
    for (const auto& [u, v] : edges) unchanged.add(u, v);
    return Graph::from_edges(std::move(unchanged));
  }

  std::uint64_t done = 0;
  const std::uint64_t max_attempts = swaps * 20;
  for (std::uint64_t attempt = 0; attempt < max_attempts && done < swaps; ++attempt) {
    const std::size_t i = rng.below(edges.size());
    const std::size_t j = rng.below(edges.size());
    if (i == j) continue;
    auto [a, b] = edges[i];
    auto [c, d] = edges[j];
    // Randomize orientation of the second edge for uniformity.
    if (rng.chance(0.5)) std::swap(c, d);
    // Proposed: (a,d), (c,b).
    if (a == d || c == b) continue;
    const std::uint64_t k_ad = edge_key(a, d);
    const std::uint64_t k_cb = edge_key(c, b);
    if (present.contains(k_ad) || present.contains(k_cb)) continue;
    present.erase(edge_key(a, b));
    present.erase(edge_key(c, d));
    present.insert(k_ad);
    present.insert(k_cb);
    edges[i] = {a, d};
    edges[j] = {c, b};
    ++done;
  }

  EdgeList rewired{g.num_nodes()};
  rewired.reserve(edges.size());
  for (const auto& [u, v] : edges) rewired.add(u, v);
  return Graph::from_edges(std::move(rewired));
}

}  // namespace socmix::gen
