#include "gen/powerlaw_cluster.hpp"

#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace socmix::gen {

using graph::EdgeList;
using graph::Graph;
using graph::NodeId;

Graph powerlaw_cluster(NodeId n, NodeId attach, double p_triangle, util::Rng& rng) {
  if (attach < 1 || n <= attach || p_triangle < 0.0 || p_triangle > 1.0) {
    throw std::invalid_argument{
        "powerlaw_cluster: need n > attach >= 1 and p_triangle in [0,1]"};
  }

  EdgeList edges{n};
  edges.reserve(static_cast<std::size_t>(n) * attach);

  std::vector<NodeId> repeated_nodes;              // degree-proportional pool
  std::vector<std::vector<NodeId>> adjacency(n);   // for triad formation

  const auto connect = [&](NodeId u, NodeId v) {
    edges.add(u, v);
    adjacency[u].push_back(v);
    adjacency[v].push_back(u);
    repeated_nodes.push_back(u);
    repeated_nodes.push_back(v);
  };

  const NodeId m0 = attach + 1;
  for (NodeId u = 0; u < m0; ++u) {
    for (NodeId v = u + 1; v < m0; ++v) connect(u, v);
  }

  std::unordered_set<NodeId> linked;  // targets of the current new vertex
  for (NodeId v = m0; v < n; ++v) {
    linked.clear();
    NodeId last_target = graph::kInvalidNode;
    while (linked.size() < attach) {
      NodeId target = graph::kInvalidNode;
      // Triad step: close a triangle via a random neighbor of the last
      // preferential-attachment target, when possible.
      if (last_target != graph::kInvalidNode && rng.chance(p_triangle)) {
        const auto& candidates = adjacency[last_target];
        const NodeId pick = candidates[rng.below(candidates.size())];
        if (pick != v && !linked.contains(pick)) target = pick;
      }
      if (target == graph::kInvalidNode) {
        const NodeId pick = repeated_nodes[rng.below(repeated_nodes.size())];
        if (pick == v || linked.contains(pick)) continue;
        target = pick;
        last_target = pick;
      }
      linked.insert(target);
      connect(v, target);
    }
  }
  return Graph::from_edges(std::move(edges));
}

}  // namespace socmix::gen
