// Synthetic stand-ins for the paper's Table 1 datasets.
//
// The original crawls (Facebook, LiveJournal, DBLP, physics co-authorship,
// Enron, Epinion, Slashdot, Wiki-vote, Youtube) are not redistributable and
// not available offline, so each dataset is replaced by a generator config
// that matches what drives the paper's findings:
//   * size class (n, average degree),
//   * structural class — expander-like online social networks (fast
//     mixing) vs. community-heavy collaboration/interaction networks
//     (slow mixing),
//   * and, for the slow class, the sparse inter-community cuts that pin
//     the SLEM near 1.
//
// The per-dataset `paper_mixing_class` records the qualitative behaviour
// the paper reports (its Table 1 mu column and Figs 1-2), which
// EXPERIMENTS.md compares against our measured values. Paper-scale node
// counts are kept in the spec; benches build them at a reduced
// `default_nodes` so every figure regenerates on one core in minutes
// (--scale 1.0 restores paper-scale n).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace socmix::gen {

/// Structural family of a stand-in generator.
enum class Family {
  kBarabasiAlbert,     ///< expander-like OSN core, power-law degrees
  kPowerlawCluster,    ///< power-law + high clustering (Holme-Kim)
  kCommunityPowerlaw,  ///< Holme-Kim blocks joined by sparse cuts
  kWattsStrogatz,      ///< lattice-ish interaction graph
};

/// Qualitative mixing class the paper reports for the original dataset.
enum class MixingClass { kFast, kModerate, kSlow };

struct DatasetSpec {
  std::string name;            ///< paper's dataset name, e.g. "Physics 1"
  std::string citation;        ///< paper's source, e.g. "ca-GrQc [9]"
  std::uint64_t paper_nodes;   ///< n in Table 1
  std::uint64_t paper_edges;   ///< m in Table 1
  MixingClass paper_mixing_class;
  Family family;

  // Generator parameters (interpreted per family):
  double avg_degree;        ///< target mean degree (sets attach / k)
  double clustering;        ///< p_triangle (HK) or rewiring beta (WS)
  graph::NodeId block_size; ///< community size for kCommunityPowerlaw
  double inter_block_links; ///< inter-community edges per block (sparse cut knob)
  /// Fraction of each community that is low-degree "pendant" members (1-3
  /// edges into the community core). Collaboration graphs like DBLP are
  /// mostly such one-paper authors — which is exactly what SybilGuard-style
  /// trimming removes (paper Fig. 6: DBLP shrinks 615K -> 145K by degree-5
  /// trimming). 0 for datasets without that structure.
  double pendant_fraction = 0.0;

  /// Node count the default bench runs use (paper-scale for small sets,
  /// scaled-down for the 1M-node sets).
  graph::NodeId default_nodes;
};

/// All 15 Table-1 dataset stand-ins, in the paper's row order.
[[nodiscard]] const std::vector<DatasetSpec>& table1_datasets();

/// Looks a spec up by (case-insensitive) name; nullopt if unknown.
[[nodiscard]] std::optional<DatasetSpec> find_dataset(const std::string& name);

/// Builds a stand-in at `nodes` vertices (0 = spec.default_nodes). The
/// result is the largest connected component, so it is directly usable by
/// the measurement pipeline. Deterministic in (spec, nodes, seed).
[[nodiscard]] graph::Graph build_dataset(const DatasetSpec& spec, graph::NodeId nodes,
                                         std::uint64_t seed);

/// Composite generator behind Family::kCommunityPowerlaw, exposed for
/// direct use: `blocks` communities of `block_size` vertices, joined by
/// `links_per_block` random inter-community edges per block (>= 1 keeps the
/// block graph connected). Each community is a Holme-Kim core
/// (attach/p_triangle as in powerlaw_cluster) of the first
/// (1 - pendant_fraction) * block_size vertices, plus pendant members with
/// 1-3 random links into that core.
[[nodiscard]] graph::Graph community_powerlaw(graph::NodeId blocks, graph::NodeId block_size,
                                              graph::NodeId attach, double p_triangle,
                                              double links_per_block, util::Rng& rng,
                                              double pendant_fraction = 0.0);

}  // namespace socmix::gen
