// Synthetic edge-weight models — interaction graphs from topology.
//
// Wilson et al. (the source of the paper's Facebook A/B datasets) showed
// that weighting friendship links by actual interaction volume changes the
// graph's algorithmic behavior: interactions are heavy-tailed across links
// and concentrated inside communities. These generators reproduce both
// effects on top of any Graph, so the weighted measurement stack can ask
// "how much slower does the *interaction* chain mix than the friendship
// chain?" — the distinction behind the paper's dataset categories.
#pragma once

#include "graph/weighted_graph.hpp"
#include "util/rng.hpp"

namespace socmix::gen {

/// Unit weights: the weighted chain equals the simple chain exactly.
[[nodiscard]] graph::WeightedGraph unit_weights(const graph::Graph& g);

/// I.i.d. Pareto(alpha, minimum 1) weights — heavy-tailed interaction
/// volume uncorrelated with structure. alpha in (0.5, 10]; small alpha =
/// heavier tail.
[[nodiscard]] graph::WeightedGraph pareto_weights(const graph::Graph& g, double alpha,
                                                  util::Rng& rng);

/// Community-correlated weights for block-structured graphs (vertex ids
/// grouped in blocks of `block_size`, as community_powerlaw lays them
/// out): intra-block edges draw Pareto(alpha) scaled by `strong`,
/// inter-block edges by `weak`. strong >> weak concentrates the walk
/// inside communities — the interaction-graph effect.
[[nodiscard]] graph::WeightedGraph community_biased_weights(const graph::Graph& g,
                                                            graph::NodeId block_size,
                                                            double strong, double weak,
                                                            double alpha, util::Rng& rng);

}  // namespace socmix::gen
