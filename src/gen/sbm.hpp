// Stochastic block model — community structure on demand.
//
// The paper attributes slow mixing to community structure (citing
// Viswanath et al.'s conductance analysis): sparse cuts between dense
// communities trap random walks. The SBM gives direct control over that
// cut sparsity, making it the core ingredient of the slow-mixing dataset
// stand-ins (DBLP, physics co-authorship, LiveJournal).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace socmix::gen {

struct SbmConfig {
  /// Sizes of each community (blocks of consecutive vertex ids).
  std::vector<graph::NodeId> block_sizes;
  /// Edge probability within a community.
  double p_in = 0.0;
  /// Edge probability across communities.
  double p_out = 0.0;
};

/// Samples a stochastic block model. Intra-block pairs connect with p_in,
/// inter-block with p_out. O(n + m) expected via geometric skipping.
[[nodiscard]] graph::Graph stochastic_block_model(const SbmConfig& config, util::Rng& rng);

/// Convenience: `blocks` equal communities of `block_size` vertices, with
/// expected `avg_internal_degree` within and `avg_external_degree` across
/// (converted to the corresponding p_in/p_out).
[[nodiscard]] graph::Graph planted_communities(graph::NodeId blocks,
                                               graph::NodeId block_size,
                                               double avg_internal_degree,
                                               double avg_external_degree,
                                               util::Rng& rng);

}  // namespace socmix::gen
