#include "gen/sbm.hpp"

#include <cmath>
#include <stdexcept>

namespace socmix::gen {

using graph::EdgeList;
using graph::Graph;
using graph::NodeId;

namespace {

/// Visits each index of {0, ..., total-1} independently with probability p
/// using geometric skipping; expected O(p * total) calls.
template <typename Fn>
void sample_indices(std::uint64_t total, double p, util::Rng& rng, Fn&& visit) {
  if (p <= 0.0 || total == 0) return;
  if (p >= 1.0) {
    for (std::uint64_t i = 0; i < total; ++i) visit(i);
    return;
  }
  const double log_1mp = std::log(1.0 - p);
  double cursor = -1.0;
  while (true) {
    const double r = 1.0 - rng.uniform();  // (0, 1]
    cursor += 1.0 + std::floor(std::log(r) / log_1mp);
    if (cursor >= static_cast<double>(total)) return;
    visit(static_cast<std::uint64_t>(cursor));
  }
}

}  // namespace

Graph stochastic_block_model(const SbmConfig& config, util::Rng& rng) {
  if (config.p_in < 0.0 || config.p_in > 1.0 || config.p_out < 0.0 || config.p_out > 1.0) {
    throw std::invalid_argument{"stochastic_block_model: probabilities must be in [0,1]"};
  }
  std::vector<NodeId> block_start;
  NodeId n = 0;
  for (const NodeId size : config.block_sizes) {
    if (size == 0) throw std::invalid_argument{"stochastic_block_model: empty block"};
    block_start.push_back(n);
    n += size;
  }
  if (n == 0) throw std::invalid_argument{"stochastic_block_model: no blocks"};

  EdgeList edges{n};
  const std::size_t blocks = config.block_sizes.size();

  // Within-block edges: enumerate the upper triangle of each block.
  for (std::size_t b = 0; b < blocks; ++b) {
    const NodeId base = block_start[b];
    const std::uint64_t size = config.block_sizes[b];
    const std::uint64_t pairs = size * (size - 1) / 2;
    sample_indices(pairs, config.p_in, rng, [&](std::uint64_t idx) {
      // Invert the triangular index: row i is the largest with i(i-1)/2 <= idx.
      const auto i = static_cast<std::uint64_t>(
          (1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(idx))) / 2.0);
      std::uint64_t row = i;
      while (row * (row - 1) / 2 > idx) --row;       // correct float drift
      while ((row + 1) * row / 2 <= idx) ++row;
      const std::uint64_t col = idx - row * (row - 1) / 2;
      edges.add(base + static_cast<NodeId>(row), base + static_cast<NodeId>(col));
    });
  }

  // Across-block edges: full bipartite grid for each block pair.
  for (std::size_t a = 0; a < blocks; ++a) {
    for (std::size_t b = a + 1; b < blocks; ++b) {
      const std::uint64_t rows = config.block_sizes[a];
      const std::uint64_t cols = config.block_sizes[b];
      sample_indices(rows * cols, config.p_out, rng, [&](std::uint64_t idx) {
        edges.add(block_start[a] + static_cast<NodeId>(idx / cols),
                  block_start[b] + static_cast<NodeId>(idx % cols));
      });
    }
  }
  return Graph::from_edges(std::move(edges));
}

Graph planted_communities(NodeId blocks, NodeId block_size, double avg_internal_degree,
                          double avg_external_degree, util::Rng& rng) {
  if (blocks < 1 || block_size < 2) {
    throw std::invalid_argument{"planted_communities: need blocks >= 1, block_size >= 2"};
  }
  SbmConfig config;
  config.block_sizes.assign(blocks, block_size);
  config.p_in = std::min(1.0, avg_internal_degree / static_cast<double>(block_size - 1));
  const double external_pool = static_cast<double>(block_size) * (blocks - 1);
  config.p_out =
      blocks > 1 ? std::min(1.0, avg_external_degree / external_pool) : 0.0;
  return stochastic_block_model(config, rng);
}

}  // namespace socmix::gen
