// Watts–Strogatz small-world graphs.
//
// Interpolates between a slow-mixing ring lattice (beta = 0) and a fast-
// mixing random graph (beta = 1); the rewiring probability is a direct
// knob on the mixing time, used by the ablation experiments.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace socmix::gen {

/// WS model: ring lattice on n vertices with each vertex joined to its k
/// nearest neighbors (k even), then each lattice edge rewired with
/// probability beta to a uniform non-duplicate endpoint.
/// Requires n > k >= 2, k even, beta in [0, 1].
[[nodiscard]] graph::Graph watts_strogatz(graph::NodeId n, graph::NodeId k, double beta,
                                          util::Rng& rng);

}  // namespace socmix::gen
