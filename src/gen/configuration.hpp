// Degree-sequence null models.
//
// The paper attributes slow mixing to community structure. The sharp way
// to test that attribution is a null model that keeps everything about the
// degree sequence and destroys everything else:
//
//  * configuration_model(degrees): a fresh simple graph with (almost)
//    exactly the given degree sequence and otherwise-random wiring
//    (erased configuration model: collisions dropped).
//
//  * degree_preserving_rewire(g, swaps): double-edge swaps applied to an
//    existing graph — after enough swaps the result is a uniform sample
//    from simple graphs with g's exact degree sequence.
//
// The ablation bench pairs each slow stand-in with its rewired null: the
// null mixes fast, isolating community structure (not the heavy-tailed
// degree sequence) as the cause of slow mixing — the paper's §3.2 claim,
// and Viswanath et al.'s finding, made mechanical.
#pragma once

#include <span>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace socmix::gen {

/// Erased configuration model: stub matching over the degree sequence with
/// self-loops and duplicate edges dropped. The realized degrees are
/// therefore <= the requested ones (tight for sparse sequences). The sum
/// of `degrees` may be odd; one stub is dropped if so.
[[nodiscard]] graph::Graph configuration_model(std::span<const graph::NodeId> degrees,
                                               util::Rng& rng);

/// Convenience: the configuration-model null of an existing graph (same
/// degree sequence, random wiring).
[[nodiscard]] graph::Graph configuration_null(const graph::Graph& g, util::Rng& rng);

/// Degree-preserving randomization by double-edge swaps: picks two edges
/// (a,b), (c,d) and rewires to (a,d), (c,b) when that creates no self-loop
/// or duplicate. `swaps` successful swaps are performed (attempts are
/// bounded at 20x that). Degrees are preserved exactly.
[[nodiscard]] graph::Graph degree_preserving_rewire(const graph::Graph& g,
                                                    std::uint64_t swaps, util::Rng& rng);

}  // namespace socmix::gen
