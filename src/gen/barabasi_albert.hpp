// Barabási–Albert preferential attachment.
//
// Produces the heavy-tailed degree distributions of online social networks
// (the paper's Facebook/Slashdot-like "fast mixing" category): a dense,
// expander-like core with power-law degrees.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace socmix::gen {

/// BA model: starts from a small clique of m0 = attach+1 seed vertices and
/// grows to n, each new vertex attaching to `attach` existing vertices
/// chosen proportionally to degree (repeat-edge draws are redrawn).
/// Requires n > attach >= 1.
[[nodiscard]] graph::Graph barabasi_albert(graph::NodeId n, graph::NodeId attach,
                                           util::Rng& rng);

}  // namespace socmix::gen
