#include "gen/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gen/barabasi_albert.hpp"
#include "gen/powerlaw_cluster.hpp"
#include "gen/watts_strogatz.hpp"
#include "graph/components.hpp"
#include "util/string_util.hpp"

namespace socmix::gen {

using graph::EdgeList;
using graph::Graph;
using graph::NodeId;

namespace {

/// Table 1 of the paper, with each row mapped to a generator recipe.
/// paper_nodes/paper_edges are the published dataset sizes; the mixing
/// class encodes what Figs 1-2 show for that dataset (collaboration and
/// interaction graphs slow; OSN friendship graphs fast to moderate).
std::vector<DatasetSpec> make_table1() {
  std::vector<DatasetSpec> specs;

  const auto add = [&](DatasetSpec spec) { specs.push_back(std::move(spec)); };

  // --- small datasets (Fig 1) -------------------------------------------
  add({.name = "Wiki-vote", .citation = "wiki-Vote [8]",
       .paper_nodes = 7'066, .paper_edges = 100'736,
       .paper_mixing_class = MixingClass::kFast,
       .family = Family::kWattsStrogatz,
       .avg_degree = 28.0, .clustering = 0.18, .block_size = 0,
       .inter_block_links = 0.0, .default_nodes = 7'066});

  add({.name = "Slashdot 2", .citation = "soc-Slashdot0902 [10]",
       .paper_nodes = 82'168, .paper_edges = 582'533,
       .paper_mixing_class = MixingClass::kModerate,
       .family = Family::kCommunityPowerlaw,
       .avg_degree = 14.0, .clustering = 0.35, .block_size = 1'000,
       .inter_block_links = 220.0, .default_nodes = 40'000});

  add({.name = "Slashdot 1", .citation = "soc-Slashdot0811 [10]",
       .paper_nodes = 77'360, .paper_edges = 546'487,
       .paper_mixing_class = MixingClass::kModerate,
       .family = Family::kCommunityPowerlaw,
       .avg_degree = 14.0, .clustering = 0.35, .block_size = 1'000,
       .inter_block_links = 200.0, .default_nodes = 40'000});

  add({.name = "Facebook", .citation = "Facebook New Orleans [26]",
       .paper_nodes = 63'731, .paper_edges = 817'090,
       .paper_mixing_class = MixingClass::kFast,
       .family = Family::kWattsStrogatz,
       .avg_degree = 26.0, .clustering = 0.12, .block_size = 0,
       .inter_block_links = 0.0, .default_nodes = 40'000});

  add({.name = "Physics 1", .citation = "ca-GrQc [9]",
       .paper_nodes = 4'158, .paper_edges = 13'422,
       .paper_mixing_class = MixingClass::kSlow,
       .family = Family::kCommunityPowerlaw,
       .avg_degree = 6.5, .clustering = 0.8, .block_size = 260,
       .inter_block_links = 8.0, .default_nodes = 4'160});

  add({.name = "Physics 2", .citation = "ca-HepPh [9]",
       .paper_nodes = 11'204, .paper_edges = 117'619,
       .paper_mixing_class = MixingClass::kSlow,
       .family = Family::kCommunityPowerlaw,
       .avg_degree = 21.0, .clustering = 0.85, .block_size = 400,
       .inter_block_links = 24.0, .default_nodes = 11'200});

  add({.name = "Physics 3", .citation = "ca-HepTh [9]",
       .paper_nodes = 8'638, .paper_edges = 24'806,
       .paper_mixing_class = MixingClass::kSlow,
       .family = Family::kCommunityPowerlaw,
       .avg_degree = 5.7, .clustering = 0.75, .block_size = 300,
       .inter_block_links = 8.0, .default_nodes = 8'700});

  add({.name = "Enron", .citation = "email-Enron [9]",
       .paper_nodes = 33'696, .paper_edges = 180'811,
       .paper_mixing_class = MixingClass::kSlow,
       .family = Family::kCommunityPowerlaw,
       .avg_degree = 10.7, .clustering = 0.6, .block_size = 800,
       .inter_block_links = 32.0, .default_nodes = 33'600});

  add({.name = "Epinion", .citation = "soc-Epinions1 [20]",
       .paper_nodes = 75'877, .paper_edges = 405'739,
       .paper_mixing_class = MixingClass::kSlow,
       .family = Family::kCommunityPowerlaw,
       .avg_degree = 10.7, .clustering = 0.5, .block_size = 1'000,
       .inter_block_links = 40.0, .default_nodes = 40'000});

  // --- large datasets (Fig 2) -------------------------------------------
  // DBLP's defining trait for the paper's Fig. 6: a dense co-authorship
  // core surrounded by a majority of low-degree authors, so degree-trimming
  // removes most of the graph (615K -> 145K) while speeding up mixing.
  // avg_degree 10 sets the *core* attachment (attach = 5, so the 5-core
  // survives trimming); pendants pull the realized mean degree down to ~6.
  add({.name = "DBLP", .citation = "DBLP [13]",
       .paper_nodes = 614'981, .paper_edges = 1'155'148,
       .paper_mixing_class = MixingClass::kSlow,
       .family = Family::kCommunityPowerlaw,
       .avg_degree = 10.0, .clustering = 0.7, .block_size = 500,
       .inter_block_links = 8.0, .pendant_fraction = 0.6,
       .default_nodes = 100'000});

  add({.name = "Facebook A", .citation = "Facebook regional A [28]",
       .paper_nodes = 1'000'000, .paper_edges = 20'353'734,
       .paper_mixing_class = MixingClass::kModerate,
       .family = Family::kCommunityPowerlaw,
       .avg_degree = 40.0, .clustering = 0.3, .block_size = 2'000,
       .inter_block_links = 800.0, .default_nodes = 100'000});

  add({.name = "Facebook B", .citation = "Facebook regional B [28]",
       .paper_nodes = 1'000'000, .paper_edges = 15'807'563,
       .paper_mixing_class = MixingClass::kModerate,
       .family = Family::kCommunityPowerlaw,
       .avg_degree = 32.0, .clustering = 0.3, .block_size = 2'000,
       .inter_block_links = 640.0, .default_nodes = 100'000});

  add({.name = "Livejournal A", .citation = "LiveJournal A [14]",
       .paper_nodes = 1'000'000, .paper_edges = 26'151'771,
       .paper_mixing_class = MixingClass::kSlow,
       .family = Family::kCommunityPowerlaw,
       .avg_degree = 52.0, .clustering = 0.6, .block_size = 2'000,
       .inter_block_links = 64.0, .default_nodes = 100'000});

  add({.name = "Livejournal B", .citation = "LiveJournal B [14]",
       .paper_nodes = 1'000'000, .paper_edges = 27'562'349,
       .paper_mixing_class = MixingClass::kSlow,
       .family = Family::kCommunityPowerlaw,
       .avg_degree = 55.0, .clustering = 0.6, .block_size = 2'000,
       .inter_block_links = 72.0, .default_nodes = 100'000});

  add({.name = "Youtube", .citation = "Youtube [14]",
       .paper_nodes = 1'134'890, .paper_edges = 2'987'624,
       .paper_mixing_class = MixingClass::kModerate,
       .family = Family::kCommunityPowerlaw,
       .avg_degree = 5.3, .clustering = 0.3, .block_size = 1'000,
       .inter_block_links = 20.0, .default_nodes = 100'000});

  return specs;
}

}  // namespace

const std::vector<DatasetSpec>& table1_datasets() {
  static const std::vector<DatasetSpec> specs = make_table1();
  return specs;
}

std::optional<DatasetSpec> find_dataset(const std::string& name) {
  const std::string wanted = util::to_lower(name);
  for (const DatasetSpec& spec : table1_datasets()) {
    if (util::to_lower(spec.name) == wanted) return spec;
  }
  return std::nullopt;
}

Graph community_powerlaw(NodeId blocks, NodeId block_size, NodeId attach,
                         double p_triangle, double links_per_block, util::Rng& rng,
                         double pendant_fraction) {
  if (blocks < 1 || block_size <= attach || links_per_block < 0.0 ||
      pendant_fraction < 0.0 || pendant_fraction >= 1.0) {
    throw std::invalid_argument{
        "community_powerlaw: need blocks >= 1, block_size > attach, links >= 0, "
        "pendant_fraction in [0, 1)"};
  }
  const auto pendants = static_cast<NodeId>(pendant_fraction * block_size);
  const NodeId core_size = block_size - pendants;
  if (core_size <= attach) {
    throw std::invalid_argument{
        "community_powerlaw: pendant_fraction leaves core <= attach"};
  }

  EdgeList edges{static_cast<NodeId>(blocks * block_size)};

  // Each block: a Holme-Kim core on its first core_size ids, plus pendant
  // members with 1-3 links into random core vertices.
  for (NodeId b = 0; b < blocks; ++b) {
    const NodeId base = b * block_size;
    util::Rng block_rng = rng.fork();
    const Graph block = powerlaw_cluster(core_size, attach, p_triangle, block_rng);
    for (NodeId u = 0; u < core_size; ++u) {
      for (const NodeId v : block.neighbors(u)) {
        if (u < v) edges.add(base + u, base + v);
      }
    }
    for (NodeId p = 0; p < pendants; ++p) {
      const NodeId pendant = base + core_size + p;
      const auto degree = static_cast<NodeId>(1 + block_rng.below(4));
      for (NodeId d = 0; d < degree; ++d) {
        edges.add(pendant, base + static_cast<NodeId>(block_rng.below(core_size)));
      }
    }
  }

  // Sparse inter-community cut: every block gets ceil(links_per_block)
  // random edges to earlier blocks (block 1..B-1), guaranteeing a connected
  // block tree while keeping the cut volume — and hence the conductance —
  // as low as the knob dictates.
  // Bridges originate from core members (in collaboration graphs the
  // prolific authors are the ones spanning communities) — so trimming the
  // pendant fringe does not disconnect the block graph.
  const auto links = static_cast<NodeId>(std::max(1.0, std::ceil(links_per_block)));
  for (NodeId b = 1; b < blocks; ++b) {
    for (NodeId l = 0; l < links; ++l) {
      const auto other = static_cast<NodeId>(rng.below(b));
      const auto u = static_cast<NodeId>(b * block_size + rng.below(core_size));
      const auto v = static_cast<NodeId>(other * block_size + rng.below(core_size));
      edges.add(u, v);
    }
  }
  return Graph::from_edges(std::move(edges));
}

Graph build_dataset(const DatasetSpec& spec, NodeId nodes, std::uint64_t seed) {
  const NodeId n = nodes == 0 ? spec.default_nodes : nodes;
  util::Rng rng{util::hash_combine(seed, std::hash<std::string>{}(spec.name))};

  Graph raw;
  switch (spec.family) {
    case Family::kBarabasiAlbert: {
      const auto attach =
          static_cast<NodeId>(std::max(1.0, std::round(spec.avg_degree / 2.0)));
      raw = barabasi_albert(n, attach, rng);
      break;
    }
    case Family::kPowerlawCluster: {
      const auto attach =
          static_cast<NodeId>(std::max(1.0, std::round(spec.avg_degree / 2.0)));
      raw = powerlaw_cluster(n, attach, spec.clustering, rng);
      break;
    }
    case Family::kCommunityPowerlaw: {
      const NodeId block_size = spec.block_size;
      const auto blocks = static_cast<NodeId>(
          std::max<std::uint64_t>(1, (static_cast<std::uint64_t>(n) + block_size - 1) /
                                         block_size));
      const auto attach =
          static_cast<NodeId>(std::max(1.0, std::round(spec.avg_degree / 2.0)));
      raw = community_powerlaw(blocks, block_size, attach, spec.clustering,
                               spec.inter_block_links, rng, spec.pendant_fraction);
      break;
    }
    case Family::kWattsStrogatz: {
      auto k = static_cast<NodeId>(std::max(2.0, std::round(spec.avg_degree)));
      if (k % 2 != 0) ++k;
      raw = watts_strogatz(n, k, spec.clustering, rng);
      break;
    }
  }
  // The measurement pipeline needs a connected graph (paper §4).
  return graph::largest_component(raw).graph;
}

}  // namespace socmix::gen
