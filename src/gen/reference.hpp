// Reference graphs with closed-form random-walk spectra.
//
// These are the measurement library's ground truth: the transition matrix
// eigenvalues of each family are known exactly, so the eigensolvers and
// mixing bounds can be validated to machine precision.
//
//   complete K_n      : 1, -1/(n-1) (multiplicity n-1)        -> mu = 1/(n-1)
//   cycle C_n         : cos(2 pi k / n), k = 0..n-1            -> mu = cos(2 pi/n) (odd n)
//   path P_n          : cos(pi k / (n-1)) (weighted-path chain)
//   star S_n          : 1, 0 (mult n-2), -1                    -> periodic, mu = 1
//   complete bipartite: 1, 0 (mult n-2), -1                    -> periodic
//   hypercube Q_d     : 1 - 2k/d, k = 0..d                     -> mu = 1 - 2/d
#pragma once

#include "graph/graph.hpp"

namespace socmix::gen {

/// Complete graph on n >= 2 vertices.
[[nodiscard]] graph::Graph complete(graph::NodeId n);

/// Cycle on n >= 3 vertices.
[[nodiscard]] graph::Graph cycle(graph::NodeId n);

/// Path on n >= 2 vertices.
[[nodiscard]] graph::Graph path(graph::NodeId n);

/// Star: one hub connected to n-1 leaves (n >= 2). Bipartite => periodic.
[[nodiscard]] graph::Graph star(graph::NodeId n);

/// Complete bipartite graph K_{a,b} (a, b >= 1).
[[nodiscard]] graph::Graph complete_bipartite(graph::NodeId a, graph::NodeId b);

/// d-dimensional hypercube (2^d vertices), d >= 1.
[[nodiscard]] graph::Graph hypercube(unsigned d);

/// Circulant d-regular "ring of cliques"-style graph: vertex i connects to
/// i +- 1..d/2 (mod n). d must be even, n > d.
[[nodiscard]] graph::Graph circulant(graph::NodeId n, graph::NodeId d);

/// Two cliques of size k joined by exactly `bridges` edges — the canonical
/// slow-mixing graph (a dumbbell); mixing time grows as bridges shrink.
[[nodiscard]] graph::Graph dumbbell(graph::NodeId k, graph::NodeId bridges);

}  // namespace socmix::gen
