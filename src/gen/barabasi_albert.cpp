#include "gen/barabasi_albert.hpp"

#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace socmix::gen {

using graph::EdgeList;
using graph::Graph;
using graph::NodeId;

Graph barabasi_albert(NodeId n, NodeId attach, util::Rng& rng) {
  if (attach < 1 || n <= attach) {
    throw std::invalid_argument{"barabasi_albert: need n > attach >= 1"};
  }
  EdgeList edges{n};
  edges.reserve(static_cast<std::size_t>(n) * attach);

  // repeated_nodes holds one entry per half-edge: sampling uniformly from
  // it is sampling proportionally to degree.
  std::vector<NodeId> repeated_nodes;
  repeated_nodes.reserve(2 * static_cast<std::size_t>(n) * attach);

  // Seed: clique on attach+1 vertices guarantees every early vertex has
  // degree >= attach and the graph is connected.
  const NodeId m0 = attach + 1;
  for (NodeId u = 0; u < m0; ++u) {
    for (NodeId v = u + 1; v < m0; ++v) {
      edges.add(u, v);
      repeated_nodes.push_back(u);
      repeated_nodes.push_back(v);
    }
  }

  std::unordered_set<NodeId> targets;
  for (NodeId v = m0; v < n; ++v) {
    targets.clear();
    while (targets.size() < attach) {
      targets.insert(repeated_nodes[rng.below(repeated_nodes.size())]);
    }
    for (const NodeId t : targets) {
      edges.add(v, t);
      repeated_nodes.push_back(v);
      repeated_nodes.push_back(t);
    }
  }
  return Graph::from_edges(std::move(edges));
}

}  // namespace socmix::gen
