#include "gen/weights.hpp"

#include <cmath>
#include <stdexcept>

namespace socmix::gen {

using graph::Graph;
using graph::NodeId;
using graph::WeightedEdge;
using graph::WeightedGraph;

namespace {

/// Pareto(alpha) with minimum 1 via inverse transform.
[[nodiscard]] double pareto(double alpha, util::Rng& rng) {
  const double u = 1.0 - rng.uniform();  // (0, 1]
  return std::pow(u, -1.0 / alpha);
}

}  // namespace

WeightedGraph unit_weights(const Graph& g) { return WeightedGraph::from_graph(g); }

WeightedGraph pareto_weights(const Graph& g, double alpha, util::Rng& rng) {
  if (alpha <= 0.5 || alpha > 10.0) {
    throw std::invalid_argument{"pareto_weights: alpha must be in (0.5, 10]"};
  }
  std::vector<WeightedEdge> edges;
  edges.reserve(g.num_edges());
  const NodeId n = g.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) edges.push_back({u, v, pareto(alpha, rng)});
    }
  }
  return WeightedGraph::from_edges(std::move(edges), n);
}

WeightedGraph community_biased_weights(const Graph& g, NodeId block_size, double strong,
                                       double weak, double alpha, util::Rng& rng) {
  if (block_size == 0 || strong <= 0.0 || weak <= 0.0) {
    throw std::invalid_argument{
        "community_biased_weights: need block_size >= 1 and positive scales"};
  }
  if (alpha <= 0.5 || alpha > 10.0) {
    throw std::invalid_argument{"community_biased_weights: alpha must be in (0.5, 10]"};
  }
  std::vector<WeightedEdge> edges;
  edges.reserve(g.num_edges());
  const NodeId n = g.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u >= v) continue;
      const bool same_block = u / block_size == v / block_size;
      const double scale = same_block ? strong : weak;
      edges.push_back({u, v, scale * pareto(alpha, rng)});
    }
  }
  return WeightedGraph::from_edges(std::move(edges), n);
}

}  // namespace socmix::gen
