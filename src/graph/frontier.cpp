#include "graph/frontier.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cmath>
#include <string>

namespace socmix::graph {

std::optional<FrontierPolicy> parse_frontier_policy(std::string_view name) noexcept {
  FrontierPolicy policy;
  if (name.empty() || name == "auto") {
    policy.mode = FrontierPolicy::Mode::kAuto;
    return policy;
  }
  if (name == "off") {
    policy.mode = FrontierPolicy::Mode::kOff;
    return policy;
  }
  double fraction = 0.0;
  const auto* end = name.data() + name.size();
  const auto [ptr, ec] = std::from_chars(name.data(), end, fraction);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  if (!(fraction > 0.0) || fraction > 1.0) return std::nullopt;
  policy.mode = FrontierPolicy::Mode::kThreshold;
  policy.threshold = fraction;
  return policy;
}

std::string frontier_policy_name(const FrontierPolicy& policy) {
  switch (policy.mode) {
    case FrontierPolicy::Mode::kAuto:
      return "auto";
    case FrontierPolicy::Mode::kOff:
      return "off";
    case FrontierPolicy::Mode::kThreshold:
      break;
  }
  // Shortest decimal that round-trips, matching what the flag accepted.
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, policy.threshold);
  return ec == std::errc{} ? std::string(buf, ptr) : "threshold";
}

std::uint64_t frontier_context_word(const FrontierPolicy& policy) noexcept {
  if (!policy.enabled()) return 0;
  return std::bit_cast<std::uint64_t>(policy.row_fraction());
}

FrontierSet::FrontierSet(NodeId n) : bits_((static_cast<std::size_t>(n) + 63) / 64), n_(n) {}

void FrontierSet::reset(std::span<const NodeId> seeds) {
  std::fill(bits_.begin(), bits_.end(), 0);
  fresh_.clear();
  for (const NodeId v : seeds) {
    std::uint64_t& word = bits_[v >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (v & 63);
    if ((word & mask) == 0) {
      word |= mask;
      fresh_.push_back(v);
    }
  }
  rebuild_ranges();
}

void FrontierSet::expand(const Graph& g) {
  const auto offsets = g.offsets();
  const auto neighbors = g.raw_neighbors();
  fresh_scratch_.clear();
  for (const NodeId v : fresh_) {
    for (EdgeIndex e = offsets[v]; e < offsets[v + 1]; ++e) {
      const NodeId u = neighbors[e];
      std::uint64_t& word = bits_[u >> 6];
      const std::uint64_t mask = std::uint64_t{1} << (u & 63);
      if ((word & mask) == 0) {
        word |= mask;
        fresh_scratch_.push_back(u);
      }
    }
  }
  fresh_.swap(fresh_scratch_);
  if (!fresh_.empty()) rebuild_ranges();
}

EdgeIndex FrontierSet::covered_half_edges(const Graph& g) const noexcept {
  const auto offsets = g.offsets();
  EdgeIndex total = 0;
  for (const RowRange r : ranges_) total += offsets[r.end] - offsets[r.begin];
  return total;
}

void FrontierSet::rebuild_ranges() {
  ranges_.clear();
  covered_ = 0;
  // First position >= `from` whose bit equals `value`, or n_ if none. Bits
  // beyond n_ in the last word are always clear, so the `value` scan stops
  // on its own and the `!value` scan is clamped below.
  const auto find_next = [this](NodeId from, bool value) -> NodeId {
    std::size_t wi = from >> 6;
    if (wi >= bits_.size()) return n_;
    std::uint64_t w = value ? bits_[wi] : ~bits_[wi];
    w &= ~std::uint64_t{0} << (from & 63);
    while (w == 0) {
      if (++wi >= bits_.size()) return n_;
      w = value ? bits_[wi] : ~bits_[wi];
    }
    const auto pos = static_cast<NodeId>(wi * 64 + static_cast<std::size_t>(std::countr_zero(w)));
    return std::min(pos, n_);
  };
  NodeId begin = find_next(0, true);
  while (begin < n_) {
    const NodeId end = find_next(begin, false);
    ranges_.push_back({begin, end});
    covered_ += end - begin;
    if (end >= n_) break;
    begin = find_next(end, true);
  }
}

}  // namespace socmix::graph
