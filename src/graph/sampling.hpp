// Graph sampling strategies.
//
// The paper samples representative subgraphs of its four largest datasets
// (Facebook A/B, LiveJournal A/B) with breadth-first search from a random
// seed, taking 10K/100K/1000K-node samples (§4, Fig. 7). BFS is known to
// bias toward the dense core — i.e. toward *faster* mixing — which the
// paper argues only strengthens its slow-mixing conclusion (footnote 3).
// We additionally provide uniform-node and random-walk sampling so that the
// bias itself can be quantified (see examples/sampling_bias.cpp).
#pragma once

#include "graph/graph.hpp"
#include "graph/subgraph.hpp"
#include "util/rng.hpp"

namespace socmix::graph {

/// BFS sample: the first `target_nodes` vertices discovered by a
/// breadth-first search from a random start vertex, as the paper does.
/// If the start's component is smaller than target_nodes, BFS restarts from
/// a new random unvisited vertex until the target is met (or graph exhausted).
[[nodiscard]] ExtractedSubgraph bfs_sample(const Graph& g, NodeId target_nodes,
                                           util::Rng& rng);

/// BFS sample from an explicit start vertex (deterministic given the graph).
[[nodiscard]] ExtractedSubgraph bfs_sample_from(const Graph& g, NodeId start,
                                                NodeId target_nodes);

/// Uniform random vertex sample (induced subgraph; may be disconnected).
[[nodiscard]] ExtractedSubgraph uniform_node_sample(const Graph& g, NodeId target_nodes,
                                                    util::Rng& rng);

/// Random-walk sample: vertices visited by a simple random walk from a
/// random start until `target_nodes` distinct vertices are seen (with
/// restart if the walk exhausts its component).
[[nodiscard]] ExtractedSubgraph random_walk_sample(const Graph& g, NodeId target_nodes,
                                                   util::Rng& rng);

}  // namespace socmix::graph
