// Low-degree trimming and k-core decomposition.
//
// SybilGuard/SybilLimit preprocess social graphs by removing low-degree
// nodes to speed up mixing; the paper reproduces this on DBLP, trimming
// minimum degree 1..5 and re-measuring (Fig. 6), and finds the speedup is
// bought with a huge reduction in graph size (614,981 -> 145,497 nodes).
//
// trim_min_degree(g, k) iteratively deletes vertices of degree < k until
// none remain — i.e. it computes the k-core (restricted to what survives),
// matching the paper's "iteratively removing lower degree nodes".
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/subgraph.hpp"

namespace socmix::graph {

/// Iteratively removes vertices of degree < min_degree until the remaining
/// graph has minimum degree >= min_degree (the min_degree-core). The result
/// may be empty. original_id maps surviving vertices back to g.
[[nodiscard]] ExtractedSubgraph trim_min_degree(const Graph& g, NodeId min_degree);

/// Core number of every vertex (the largest k such that the vertex survives
/// in the k-core), via the standard peeling algorithm in O(n + m).
[[nodiscard]] std::vector<NodeId> core_numbers(const Graph& g);

/// Degeneracy of the graph: max core number over all vertices.
[[nodiscard]] NodeId degeneracy(const Graph& g);

}  // namespace socmix::graph
