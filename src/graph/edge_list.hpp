// Mutable edge-list staging area used to assemble graphs before freezing
// them into immutable CSR form.
//
// The paper's preprocessing pipeline (§4): take a possibly-directed crawl,
// make it undirected, drop self-loops and duplicate edges, then extract the
// largest connected component. EdgeList implements the first three steps.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/types.hpp"

namespace socmix::graph {

/// A single undirected or directed edge between two vertex ids.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  friend constexpr bool operator==(const Edge&, const Edge&) = default;
  friend constexpr auto operator<=>(const Edge&, const Edge&) = default;
};

/// Growable list of edges with the cleanup passes needed to build a simple
/// undirected graph. Node ids are dense indices [0, num_nodes).
class EdgeList {
 public:
  EdgeList() = default;

  /// Creates a list that knows it will hold vertices [0, n) even if some
  /// are isolated.
  explicit EdgeList(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Appends an edge; expands num_nodes() to cover both endpoints.
  void add(NodeId u, NodeId v);

  void reserve(std::size_t edges) { edges_.reserve(edges); }

  [[nodiscard]] std::size_t size() const noexcept { return edges_.size(); }
  [[nodiscard]] bool empty() const noexcept { return edges_.empty(); }
  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }

  /// Raises the node count (for declaring isolated trailing vertices).
  void ensure_nodes(NodeId n) { num_nodes_ = n > num_nodes_ ? n : num_nodes_; }

  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Removes u==v edges in place.
  void remove_self_loops();

  /// Reorders each edge so u <= v, then removes exact duplicates. After this
  /// the list represents a simple undirected graph.
  void symmetrize_and_dedup();

  /// Number of edges with u == v currently present.
  [[nodiscard]] std::size_t count_self_loops() const noexcept;

 private:
  std::vector<Edge> edges_;
  NodeId num_nodes_ = 0;
};

}  // namespace socmix::graph
