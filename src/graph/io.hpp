// Graph serialization: SNAP-style edge-list text and a compact binary CSR.
//
// The paper's datasets circulate as whitespace-separated "u v" edge lists
// (SNAP / Mislove releases); load_edge_list() accepts exactly that format,
// including '#' and '%' comment lines and arbitrary (sparse) vertex ids,
// which are densified to [0, n).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace socmix::graph {

/// Result of parsing a text edge list: the clean graph plus parse stats.
struct LoadResult {
  Graph graph;
  std::size_t lines_read = 0;
  std::size_t edges_parsed = 0;
  std::size_t self_loops_dropped = 0;
  std::size_t duplicates_dropped = 0;
  /// Malformed lines skipped (lenient mode only; strict mode throws on
  /// the first one). Mirrored into the graph.io.malformed_lines counter.
  std::size_t malformed_lines = 0;
};

/// Parse-tolerance knobs for text edge lists.
struct EdgeListOptions {
  /// Lenient mode skips (and counts) malformed lines instead of throwing —
  /// graceful degradation for crawl dumps with stray garbage. A file that
  /// yields zero edges still throws: an all-garbage input is an error, not
  /// an empty graph.
  bool lenient = false;
  /// Lenient-mode cap: abort (throw) when more than this many lines are
  /// malformed — past that the file is the wrong format, not a dirty one.
  std::size_t max_malformed = 1000;
};

/// Parses a whitespace-separated edge list ("u v" per line, '#'/'%'
/// comments). Vertex ids may be arbitrary non-negative integers; they are
/// remapped to a dense range in first-appearance order. Directed inputs are
/// symmetrized (paper §4 preprocessing). Throws std::runtime_error on
/// malformed lines (strict mode) or when lenient tolerances are exceeded.
[[nodiscard]] LoadResult load_edge_list(std::istream& in,
                                        const EdgeListOptions& options = {});

/// Convenience wrapper opening the given path. Contains the `graph.load`
/// fault-injection site.
[[nodiscard]] LoadResult load_edge_list_file(const std::string& path,
                                             const EdgeListOptions& options = {});

/// Writes one "u v" line per undirected edge (u < v), suitable for
/// round-tripping through load_edge_list().
void save_edge_list(const Graph& g, std::ostream& out);

/// Compact binary CSR format ("SMX1" magic, little-endian u64 sizes).
/// load_binary validates the header for plausibility (bounded sizes, so a
/// garbage file cannot demand a terabyte allocation) and the decoded CSR
/// for structural sanity (monotone offsets, neighbor ids in range) before
/// handing out a Graph; every rejection throws std::runtime_error with the
/// failure named and bumps the graph.io.binary_rejected counter.
void save_binary(const Graph& g, std::ostream& out);
[[nodiscard]] Graph load_binary(std::istream& in);

void save_binary_file(const Graph& g, const std::string& path);
[[nodiscard]] Graph load_binary_file(const std::string& path);

}  // namespace socmix::graph
