// Immutable simple undirected graph in Compressed Sparse Row (CSR) form.
//
// This is the substrate every measurement in the paper runs on: the random
// walk transition matrix P = D^-1 A is never materialized — SpMV kernels and
// walk samplers read the CSR adjacency directly.
#pragma once

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace socmix::graph {

/// Simple undirected graph, frozen at construction.
///
/// Invariants (established by the builder, relied on everywhere):
///  * adjacency lists are sorted ascending and contain no duplicates,
///  * no self-loops,
///  * every undirected edge {u,v} appears in both lists.
///
/// Storage is either owned (the builders below) or borrowed
/// (`Graph::borrowed`, used by the memory-mapped `.smxg` container): a
/// borrowed view aliases caller-managed CSR arrays and must not outlive
/// them. Every accessor reads through one pointer+size pair per array, so
/// kernels are oblivious to the storage mode.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph& other) { assign(other); }
  Graph& operator=(const Graph& other) {
    if (this != &other) assign(other);
    return *this;
  }
  Graph(Graph&& other) noexcept { steal(other); }
  Graph& operator=(Graph&& other) noexcept {
    if (this != &other) steal(other);
    return *this;
  }

  /// Builds from an edge list. The list is cleaned (self-loops removed,
  /// symmetrized, deduplicated) as the paper's preprocessing prescribes.
  [[nodiscard]] static Graph from_edges(EdgeList edges);

  /// Builds from an already-clean sorted CSR (used by subgraph extraction;
  /// callers must uphold the class invariants).
  [[nodiscard]] static Graph from_csr(std::vector<EdgeIndex> offsets,
                                      std::vector<NodeId> neighbors);

  /// Wraps caller-owned CSR arrays without copying (the mmap path). The
  /// arrays must satisfy the class invariants and outlive the view — and
  /// any copy of it, which stays borrowed. `offsets` must have n+1 entries
  /// with offsets.front() == 0 and offsets.back() == neighbors.size().
  [[nodiscard]] static Graph borrowed(std::span<const EdgeIndex> offsets,
                                      std::span<const NodeId> neighbors);

  /// Wraps caller-owned row offsets with NO adjacency array: the view of a
  /// compressed (ADJC) `.smxg` container, whose neighbor ids exist only as
  /// per-shard decoded scratch (linalg::ShardPipeline). Degree/offset/size
  /// accessors all work; neighbor accessors must not be called — engines
  /// detect the case via headless() and route around them.
  [[nodiscard]] static Graph borrowed_headless(std::span<const EdgeIndex> offsets,
                                               EdgeIndex num_half_edges);

  /// True for a borrowed_headless view (offsets only, no adjacency).
  [[nodiscard]] bool headless() const noexcept {
    return neighbors_ == nullptr && neighbors_size_ != 0;
  }

  /// False for views created by `borrowed` (and their copies).
  [[nodiscard]] bool owns_storage() const noexcept {
    return offsets_ == nullptr || offsets_ == offsets_store_.data();
  }

  /// Number of vertices n = |V|.
  [[nodiscard]] NodeId num_nodes() const noexcept {
    return offsets_size_ == 0 ? 0 : static_cast<NodeId>(offsets_size_ - 1);
  }

  /// Number of undirected edges m = |E|.
  [[nodiscard]] EdgeIndex num_edges() const noexcept { return neighbors_size_ / 2; }

  /// Number of directed half-edges (2m); the denominator of pi = deg/2m.
  [[nodiscard]] EdgeIndex num_half_edges() const noexcept { return neighbors_size_; }

  [[nodiscard]] NodeId degree(NodeId v) const noexcept {
    return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbor list of v.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return {neighbors_ + offsets_[v], neighbors_ + offsets_[v + 1]};
  }

  /// Neighbor at local index i in v's adjacency list (i < degree(v)).
  [[nodiscard]] NodeId neighbor(NodeId v, NodeId i) const noexcept {
    return neighbors_[offsets_[v] + i];
  }

  /// Binary-search membership test; O(log deg(u)).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  /// Local index of v within u's adjacency list, or kInvalidNode if absent.
  [[nodiscard]] NodeId index_of_neighbor(NodeId u, NodeId v) const noexcept;

  [[nodiscard]] NodeId min_degree() const noexcept;
  [[nodiscard]] NodeId max_degree() const noexcept;

  /// True if every vertex has degree >= 1.
  [[nodiscard]] bool has_no_isolated_nodes() const noexcept;

  /// Raw CSR access for kernels (offsets has n+1 entries).
  [[nodiscard]] std::span<const EdgeIndex> offsets() const noexcept {
    return {offsets_, offsets_size_};
  }
  [[nodiscard]] std::span<const NodeId> raw_neighbors() const noexcept {
    // Headless views report an empty span (a null pointer with a nonzero
    // extent is not a constructible std::span).
    return {neighbors_, neighbors_ == nullptr ? 0 : neighbors_size_};
  }

  /// Footprint of the CSR arrays in bytes. For a borrowed (mmap-backed)
  /// view this counts mapped bytes, not resident heap.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return offsets_size_ * sizeof(EdgeIndex) + neighbors_size_ * sizeof(NodeId);
  }

 private:
  Graph(std::vector<EdgeIndex> offsets, std::vector<NodeId> neighbors)
      : offsets_store_(std::move(offsets)), neighbors_store_(std::move(neighbors)) {
    point_at_store();
  }

  void point_at_store() noexcept {
    offsets_ = offsets_store_.data();
    offsets_size_ = offsets_store_.size();
    neighbors_ = neighbors_store_.data();
    neighbors_size_ = neighbors_store_.size();
  }

  void assign(const Graph& other) {
    const bool owned = other.owns_storage();
    offsets_store_ = other.offsets_store_;
    neighbors_store_ = other.neighbors_store_;
    if (owned) {
      point_at_store();
    } else {
      offsets_ = other.offsets_;
      offsets_size_ = other.offsets_size_;
      neighbors_ = other.neighbors_;
      neighbors_size_ = other.neighbors_size_;
    }
  }

  void steal(Graph& other) noexcept {
    const bool owned = other.owns_storage();
    offsets_store_ = std::move(other.offsets_store_);
    neighbors_store_ = std::move(other.neighbors_store_);
    if (owned) {
      point_at_store();
    } else {
      offsets_ = other.offsets_;
      offsets_size_ = other.offsets_size_;
      neighbors_ = other.neighbors_;
      neighbors_size_ = other.neighbors_size_;
    }
    other.offsets_store_.clear();
    other.neighbors_store_.clear();
    other.point_at_store();
  }

  std::vector<EdgeIndex> offsets_store_;  // size n+1 when owning
  std::vector<NodeId> neighbors_store_;   // size 2m when owning, lists sorted
  const EdgeIndex* offsets_ = nullptr;    // active view (store or borrowed)
  std::size_t offsets_size_ = 0;
  const NodeId* neighbors_ = nullptr;
  std::size_t neighbors_size_ = 0;
};

/// Deterministic structural fingerprint of a graph: hashes n, m, and a
/// bounded stride-sample of the CSR arrays (at most ~64K positions each,
/// so it stays O(1)-ish on paper-scale graphs). Used by the resilience
/// layer to refuse resuming a checkpoint against a different graph; not a
/// collision-resistant digest.
[[nodiscard]] std::uint64_t structural_fingerprint(const Graph& g) noexcept;

}  // namespace socmix::graph
