// Immutable simple undirected graph in Compressed Sparse Row (CSR) form.
//
// This is the substrate every measurement in the paper runs on: the random
// walk transition matrix P = D^-1 A is never materialized — SpMV kernels and
// walk samplers read the CSR adjacency directly.
#pragma once

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace socmix::graph {

/// Simple undirected graph, frozen at construction.
///
/// Invariants (established by the builder, relied on everywhere):
///  * adjacency lists are sorted ascending and contain no duplicates,
///  * no self-loops,
///  * every undirected edge {u,v} appears in both lists.
class Graph {
 public:
  Graph() = default;

  /// Builds from an edge list. The list is cleaned (self-loops removed,
  /// symmetrized, deduplicated) as the paper's preprocessing prescribes.
  [[nodiscard]] static Graph from_edges(EdgeList edges);

  /// Builds from an already-clean sorted CSR (used by subgraph extraction;
  /// callers must uphold the class invariants).
  [[nodiscard]] static Graph from_csr(std::vector<EdgeIndex> offsets,
                                      std::vector<NodeId> neighbors);

  /// Number of vertices n = |V|.
  [[nodiscard]] NodeId num_nodes() const noexcept {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }

  /// Number of undirected edges m = |E|.
  [[nodiscard]] EdgeIndex num_edges() const noexcept { return neighbors_.size() / 2; }

  /// Number of directed half-edges (2m); the denominator of pi = deg/2m.
  [[nodiscard]] EdgeIndex num_half_edges() const noexcept { return neighbors_.size(); }

  [[nodiscard]] NodeId degree(NodeId v) const noexcept {
    return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbor list of v.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return {neighbors_.data() + offsets_[v], neighbors_.data() + offsets_[v + 1]};
  }

  /// Neighbor at local index i in v's adjacency list (i < degree(v)).
  [[nodiscard]] NodeId neighbor(NodeId v, NodeId i) const noexcept {
    return neighbors_[offsets_[v] + i];
  }

  /// Binary-search membership test; O(log deg(u)).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  /// Local index of v within u's adjacency list, or kInvalidNode if absent.
  [[nodiscard]] NodeId index_of_neighbor(NodeId u, NodeId v) const noexcept;

  [[nodiscard]] NodeId min_degree() const noexcept;
  [[nodiscard]] NodeId max_degree() const noexcept;

  /// True if every vertex has degree >= 1.
  [[nodiscard]] bool has_no_isolated_nodes() const noexcept;

  /// Raw CSR access for kernels (offsets has n+1 entries).
  [[nodiscard]] std::span<const EdgeIndex> offsets() const noexcept { return offsets_; }
  [[nodiscard]] std::span<const NodeId> raw_neighbors() const noexcept { return neighbors_; }

  /// Memory footprint of the CSR arrays in bytes.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return offsets_.size() * sizeof(EdgeIndex) + neighbors_.size() * sizeof(NodeId);
  }

 private:
  Graph(std::vector<EdgeIndex> offsets, std::vector<NodeId> neighbors)
      : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {}

  std::vector<EdgeIndex> offsets_;   // size n+1
  std::vector<NodeId> neighbors_;    // size 2m, each list sorted
};

/// Deterministic structural fingerprint of a graph: hashes n, m, and a
/// bounded stride-sample of the CSR arrays (at most ~64K positions each,
/// so it stays O(1)-ish on paper-scale graphs). Used by the resilience
/// layer to refuse resuming a checkpoint against a different graph; not a
/// collision-resistant digest.
[[nodiscard]] std::uint64_t structural_fingerprint(const Graph& g) noexcept;

}  // namespace socmix::graph
