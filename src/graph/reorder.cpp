#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace socmix::graph {

namespace {

/// BFS from `start` over unvisited vertices, appending visits to `order`.
/// Neighbors are enqueued in the order `rank` dictates: for Cuthill-McKee
/// ascending (degree, id), for plain BFS ascending id (the CSR's natural
/// neighbor order). Returns the index into `order` where the last BFS
/// level begins (needed by the pseudo-peripheral search).
std::size_t bfs_component(const Graph& g, NodeId start, bool degree_rank,
                          std::vector<bool>& visited, std::vector<NodeId>& order,
                          std::vector<NodeId>& scratch) {
  const std::size_t first = order.size();
  std::size_t level_begin = first;
  order.push_back(start);
  visited[start] = true;
  std::size_t frontier_begin = first;
  while (frontier_begin < order.size()) {
    const std::size_t frontier_end = order.size();
    level_begin = frontier_begin;
    for (std::size_t q = frontier_begin; q < frontier_end; ++q) {
      const NodeId u = order[q];
      scratch.clear();
      for (const NodeId v : g.neighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          scratch.push_back(v);
        }
      }
      if (degree_rank) {
        std::sort(scratch.begin(), scratch.end(), [&g](NodeId a, NodeId b) {
          const NodeId da = g.degree(a);
          const NodeId db = g.degree(b);
          return da != db ? da < db : a < b;
        });
      }
      order.insert(order.end(), scratch.begin(), scratch.end());
    }
    frontier_begin = frontier_end;
  }
  return level_begin;
}

/// George-Liu pseudo-peripheral vertex: start from the component's
/// min-degree vertex and walk to the far end of the BFS tree until the
/// eccentricity stops growing (bounded to a few sweeps — each is O(m)).
NodeId pseudo_peripheral(const Graph& g, NodeId seed_vertex, std::vector<bool>& visited,
                         std::vector<NodeId>& scratch) {
  NodeId start = seed_vertex;
  std::size_t best_depth = 0;
  std::vector<NodeId> order;
  for (int sweep = 0; sweep < 4; ++sweep) {
    order.clear();
    const std::size_t level_begin = bfs_component(g, start, false, visited, order, scratch);
    for (const NodeId v : order) visited[v] = false;  // probe only
    const std::size_t depth = order.size() - level_begin;
    // Next candidate: min-degree vertex of the deepest level.
    NodeId candidate = order[level_begin];
    for (std::size_t i = level_begin; i < order.size(); ++i) {
      const NodeId v = order[i];
      if (g.degree(v) < g.degree(candidate) ||
          (g.degree(v) == g.degree(candidate) && v < candidate)) {
        candidate = v;
      }
    }
    if (sweep > 0 && depth <= best_depth) break;
    best_depth = depth;
    if (candidate == start) break;
    start = candidate;
  }
  return start;
}

/// Visit order -> permutation (perm[old] = new).
std::vector<NodeId> order_to_perm(const std::vector<NodeId>& order) {
  std::vector<NodeId> perm(order.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    perm[order[pos]] = static_cast<NodeId>(pos);
  }
  return perm;
}

std::vector<NodeId> degree_sort_permutation(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  // Hubs first: the heavy gather targets pack into a small hot prefix.
  std::sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    const NodeId da = g.degree(a);
    const NodeId db = g.degree(b);
    return da != db ? da > db : a < b;
  });
  return order_to_perm(order);
}

std::vector<NodeId> traversal_permutation(const Graph& g, bool rcm) {
  const NodeId n = g.num_nodes();
  std::vector<bool> visited(n, false);
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> scratch;
  for (NodeId v = 0; v < n; ++v) {
    if (visited[v]) continue;
    NodeId start = v;
    if (rcm && g.degree(v) > 0) {
      start = pseudo_peripheral(g, v, visited, scratch);
    }
    const std::size_t component_begin = order.size();
    bfs_component(g, start, /*degree_rank=*/rcm, visited, order, scratch);
    if (rcm) {
      // Reverse Cuthill-McKee: reverse each component's CM order.
      std::reverse(order.begin() + static_cast<std::ptrdiff_t>(component_begin),
                   order.end());
    }
  }
  return order_to_perm(order);
}

}  // namespace

std::string_view reorder_mode_name(ReorderMode mode) noexcept {
  switch (mode) {
    case ReorderMode::kNone: return "none";
    case ReorderMode::kDegree: return "degree";
    case ReorderMode::kRcm: return "rcm";
    case ReorderMode::kBfs: return "bfs";
  }
  return "none";
}

std::optional<ReorderMode> parse_reorder_mode(std::string_view name) noexcept {
  if (name.empty() || name == "none") return ReorderMode::kNone;
  if (name == "degree") return ReorderMode::kDegree;
  if (name == "rcm") return ReorderMode::kRcm;
  if (name == "bfs") return ReorderMode::kBfs;
  return std::nullopt;
}

std::vector<NodeId> reorder_permutation(const Graph& g, ReorderMode mode) {
  switch (mode) {
    case ReorderMode::kNone: {
      std::vector<NodeId> identity(g.num_nodes());
      std::iota(identity.begin(), identity.end(), NodeId{0});
      return identity;
    }
    case ReorderMode::kDegree:
      return degree_sort_permutation(g);
    case ReorderMode::kRcm:
      return traversal_permutation(g, /*rcm=*/true);
    case ReorderMode::kBfs:
      return traversal_permutation(g, /*rcm=*/false);
  }
  throw std::invalid_argument{"reorder_permutation: unknown mode"};
}

std::vector<NodeId> invert_permutation(std::span<const NodeId> perm) {
  std::vector<NodeId> inverse(perm.size(), kInvalidNode);
  for (std::size_t v = 0; v < perm.size(); ++v) {
    const NodeId target = perm[v];
    if (target >= perm.size() || inverse[target] != kInvalidNode) {
      throw std::invalid_argument{"invert_permutation: not a bijection"};
    }
    inverse[target] = static_cast<NodeId>(v);
  }
  return inverse;
}

Graph apply_permutation(const Graph& g, std::span<const NodeId> perm) {
  const NodeId n = g.num_nodes();
  if (perm.size() != n) {
    throw std::invalid_argument{"apply_permutation: permutation size != num_nodes"};
  }
  const std::vector<NodeId> inverse = invert_permutation(perm);  // validates

  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId new_id = 0; new_id < n; ++new_id) {
    offsets[new_id + 1] = offsets[new_id] + g.degree(inverse[new_id]);
  }
  std::vector<NodeId> neighbors(g.num_half_edges());
  for (NodeId new_id = 0; new_id < n; ++new_id) {
    const NodeId old_id = inverse[new_id];
    EdgeIndex cursor = offsets[new_id];
    for (const NodeId old_neighbor : g.neighbors(old_id)) {
      neighbors[cursor++] = perm[old_neighbor];
    }
    std::sort(neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[new_id]),
              neighbors.begin() + static_cast<std::ptrdiff_t>(cursor));
  }
  return Graph::from_csr(std::move(offsets), std::move(neighbors));
}

std::vector<NodeId> shuffle_permutation(NodeId n, std::uint64_t seed) {
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  util::Rng rng{seed};
  for (NodeId i = n; i > 1; --i) {
    const auto j = static_cast<NodeId>(rng.below(i));
    std::swap(order[i - 1], order[j]);
  }
  return order_to_perm(order);
}

LocalityStats locality_stats(const Graph& g) noexcept {
  LocalityStats stats;
  const NodeId n = g.num_nodes();
  if (g.num_half_edges() == 0) return stats;
  std::uint64_t total = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId u : g.neighbors(v)) {
      const std::uint64_t d = v > u ? v - u : u - v;
      total += d;
      stats.bandwidth = std::max(stats.bandwidth, d);
    }
  }
  stats.avg_neighbor_distance =
      static_cast<double>(total) / static_cast<double>(g.num_half_edges());
  return stats;
}

ReorderedGraph reorder_graph(const Graph& g, ReorderMode mode) {
  ReorderedGraph out;
  out.mode = mode;
  SOCMIX_GAUGE_SET("reorder.mode", static_cast<double>(mode));
  if (mode == ReorderMode::kNone) return out;

  SOCMIX_TRACE_SPAN("graph.reorder");
  const util::Timer timer;
  const LocalityStats before = locality_stats(g);
  out.perm = reorder_permutation(g, mode);
  out.graph = apply_permutation(g, out.perm);
  const LocalityStats after = locality_stats(out.graph);

  SOCMIX_COUNTER_ADD("reorder.applied", 1);
  SOCMIX_GAUGE_SET("reorder.seconds", timer.seconds());
  SOCMIX_GAUGE_SET("reorder.bandwidth_before", static_cast<double>(before.bandwidth));
  SOCMIX_GAUGE_SET("reorder.bandwidth_after", static_cast<double>(after.bandwidth));
  SOCMIX_GAUGE_SET("reorder.avg_neighbor_distance_before", before.avg_neighbor_distance);
  SOCMIX_GAUGE_SET("reorder.avg_neighbor_distance_after", after.avg_neighbor_distance);
  return out;
}

}  // namespace socmix::graph
