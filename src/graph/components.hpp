// Connected components and largest-component extraction.
//
// The mixing time is undefined on a disconnected graph, so the paper runs
// every measurement on the largest connected component (§4). This module
// finds components by BFS and extracts the largest as a relabeled Graph.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/subgraph.hpp"

namespace socmix::graph {

/// Component labeling of a graph.
struct Components {
  /// component[v] = dense component id of v.
  std::vector<NodeId> component;
  /// sizes[c] = number of vertices in component c.
  std::vector<NodeId> sizes;

  [[nodiscard]] std::size_t count() const noexcept { return sizes.size(); }

  /// Id of the largest component (ties broken by lowest id).
  [[nodiscard]] NodeId largest() const noexcept;
};

/// Labels all connected components via BFS. O(n + m).
[[nodiscard]] Components connected_components(const Graph& g);

/// Extracts the largest connected component, relabeling vertices densely.
[[nodiscard]] ExtractedSubgraph largest_component(const Graph& g);

/// True if the whole graph is one connected component (and nonempty).
[[nodiscard]] bool is_connected(const Graph& g);

}  // namespace socmix::graph
