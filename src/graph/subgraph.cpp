#include "graph/subgraph.hpp"

#include <algorithm>

namespace socmix::graph {

ExtractedSubgraph induced_subgraph(const Graph& g, std::span<const NodeId> members) {
  ExtractedSubgraph out;
  out.original_id.assign(members.begin(), members.end());

  // Dense membership map: new id + 1, or 0 for "not a member".
  std::vector<NodeId> new_id(g.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < out.original_id.size(); ++i) {
    new_id[out.original_id[i]] = static_cast<NodeId>(i);
  }

  const auto n = static_cast<NodeId>(out.original_id.size());
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    EdgeIndex deg = 0;
    for (const NodeId w : g.neighbors(out.original_id[v])) {
      if (new_id[w] != kInvalidNode) ++deg;
    }
    offsets[v + 1] = offsets[v] + deg;
  }

  std::vector<NodeId> neighbors(offsets.back());
  for (NodeId v = 0; v < n; ++v) {
    EdgeIndex cursor = offsets[v];
    for (const NodeId w : g.neighbors(out.original_id[v])) {
      if (new_id[w] != kInvalidNode) neighbors[cursor++] = new_id[w];
    }
    std::sort(neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }
  out.graph = Graph::from_csr(std::move(offsets), std::move(neighbors));
  return out;
}

}  // namespace socmix::graph
