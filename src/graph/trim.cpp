#include "graph/trim.hpp"

#include <algorithm>

namespace socmix::graph {

ExtractedSubgraph trim_min_degree(const Graph& g, NodeId min_degree) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> deg(n);
  for (NodeId v = 0; v < n; ++v) deg[v] = g.degree(v);

  std::vector<char> removed(n, 0);
  std::vector<NodeId> worklist;
  for (NodeId v = 0; v < n; ++v) {
    if (deg[v] < min_degree) {
      removed[v] = 1;
      worklist.push_back(v);
    }
  }
  while (!worklist.empty()) {
    const NodeId v = worklist.back();
    worklist.pop_back();
    for (const NodeId w : g.neighbors(v)) {
      if (removed[w] == 0 && --deg[w] < min_degree) {
        removed[w] = 1;
        worklist.push_back(w);
      }
    }
  }

  std::vector<NodeId> members;
  for (NodeId v = 0; v < n; ++v) {
    if (removed[v] == 0) members.push_back(v);
  }
  return induced_subgraph(g, members);
}

std::vector<NodeId> core_numbers(const Graph& g) {
  // Matula–Beck peeling with bucket queues; O(n + m).
  const NodeId n = g.num_nodes();
  std::vector<NodeId> deg(n);
  NodeId max_deg = 0;
  for (NodeId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }

  // bin[d] = start index of the block of vertices with current degree d.
  std::vector<NodeId> bin(static_cast<std::size_t>(max_deg) + 2, 0);
  for (NodeId v = 0; v < n; ++v) ++bin[deg[v] + 1];
  for (std::size_t d = 1; d < bin.size(); ++d) bin[d] += bin[d - 1];

  std::vector<NodeId> order(n);       // vertices sorted by current degree
  std::vector<NodeId> position(n);    // position of each vertex in `order`
  {
    std::vector<NodeId> cursor(bin.begin(), bin.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      position[v] = cursor[deg[v]];
      order[position[v]] = v;
      ++cursor[deg[v]];
    }
  }

  std::vector<NodeId> core(n, 0);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId v = order[i];
    core[v] = deg[v];
    for (const NodeId w : g.neighbors(v)) {
      if (deg[w] > deg[v]) {
        // Swap w to the front of its degree block, then shrink its degree.
        const NodeId dw = deg[w];
        const NodeId pw = position[w];
        const NodeId pfront = bin[dw];
        const NodeId front = order[pfront];
        if (front != w) {
          std::swap(order[pw], order[pfront]);
          position[w] = pfront;
          position[front] = pw;
        }
        ++bin[dw];
        --deg[w];
      }
    }
  }
  return core;
}

NodeId degeneracy(const Graph& g) {
  const auto core = core_numbers(g);
  NodeId best = 0;
  for (const NodeId c : core) best = std::max(best, c);
  return best;
}

}  // namespace socmix::graph
