#include "graph/io.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "obs/obs.hpp"
#include "resilience/fault.hpp"
#include "util/string_util.hpp"

namespace socmix::graph {

namespace {

constexpr char kMagic[4] = {'S', 'M', 'X', '1'};

void write_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 8);
}

[[nodiscard]] std::uint64_t read_u64(std::istream& in) {
  char buf[8];
  in.read(buf, 8);
  if (!in) throw std::runtime_error{"truncated stream"};
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  return v;
}

}  // namespace

LoadResult load_edge_list(std::istream& in, const EdgeListOptions& options) {
  LoadResult result;
  EdgeList edges;
  std::unordered_map<std::uint64_t, NodeId> remap;
  const auto densify = [&](std::uint64_t raw) -> NodeId {
    const auto [it, inserted] = remap.try_emplace(raw, static_cast<NodeId>(remap.size()));
    return it->second;
  };

  const auto reject = [&](const std::string& what) -> bool {
    // Strict: fail on the first bad line. Lenient: count and skip, up to
    // the tolerance — a file that is mostly garbage is the wrong format.
    if (!options.lenient) {
      SOCMIX_COUNTER_ADD("graph.io.load_failures", 1);
      throw std::runtime_error{what};
    }
    ++result.malformed_lines;
    if (result.malformed_lines > options.max_malformed) {
      SOCMIX_COUNTER_ADD("graph.io.load_failures", 1);
      throw std::runtime_error{"load_edge_list: more than " +
                               std::to_string(options.max_malformed) +
                               " malformed lines; last: " + what};
    }
    return false;
  };

  std::string line;
  while (std::getline(in, line)) {
    ++result.lines_read;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#' || trimmed.front() == '%') continue;
    const auto fields = util::split_ws(trimmed);
    if (fields.size() < 2) {
      reject("load_edge_list: malformed line " + std::to_string(result.lines_read) +
             ": '" + line + "'");
      continue;
    }
    const auto u = util::parse_i64(fields[0]);
    const auto v = util::parse_i64(fields[1]);
    if (!u || !v || *u < 0 || *v < 0) {
      reject("load_edge_list: non-integer vertex id at line " +
             std::to_string(result.lines_read));
      continue;
    }
    ++result.edges_parsed;
    // Sequence the two densify calls: function-argument evaluation order
    // is unspecified, so `add(densify(u), densify(v))` would make the
    // "first-appearance" labeling a compiler artifact (gcc evaluated the
    // arguments right to left). Every other producer of this labeling —
    // graph_pack's streaming loader in particular — assigns u before v,
    // and the out-of-core TVD parity checks compare the two bytewise.
    const NodeId du = densify(static_cast<std::uint64_t>(*u));
    const NodeId dv = densify(static_cast<std::uint64_t>(*v));
    edges.add(du, dv);
  }
  if (result.malformed_lines > 0) {
    SOCMIX_COUNTER_ADD("graph.io.malformed_lines", result.malformed_lines);
  }
  if (options.lenient && result.edges_parsed == 0 && result.malformed_lines > 0) {
    SOCMIX_COUNTER_ADD("graph.io.load_failures", 1);
    throw std::runtime_error{"load_edge_list: no parsable edges (" +
                             std::to_string(result.malformed_lines) + " malformed lines)"};
  }

  const std::size_t raw_edges = edges.size();
  result.self_loops_dropped = edges.count_self_loops();
  result.graph = Graph::from_edges(std::move(edges));
  result.duplicates_dropped =
      raw_edges - result.self_loops_dropped - static_cast<std::size_t>(result.graph.num_edges());
  return result;
}

LoadResult load_edge_list_file(const std::string& path, const EdgeListOptions& options) {
  resilience::fault_point("graph.load");
  std::ifstream in{path};
  if (!in) {
    SOCMIX_COUNTER_ADD("graph.io.load_failures", 1);
    throw std::runtime_error{"load_edge_list_file: cannot open " + path};
  }
  return load_edge_list(in, options);
}

void save_edge_list(const Graph& g, std::ostream& out) {
  const NodeId n = g.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
}

void save_binary(const Graph& g, std::ostream& out) {
  out.write(kMagic, 4);
  const auto offsets = g.offsets();
  const auto neighbors = g.raw_neighbors();
  write_u64(out, offsets.size());
  write_u64(out, neighbors.size());
  for (const EdgeIndex off : offsets) write_u64(out, off);
  // Neighbors as u32: halves file size relative to u64 ids.
  for (const NodeId v : neighbors) {
    char buf[4];
    for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    out.write(buf, 4);
  }
}

Graph load_binary(std::istream& in) {
  const auto rejected = [](const std::string& what) -> std::runtime_error {
    SOCMIX_COUNTER_ADD("graph.io.binary_rejected", 1);
    return std::runtime_error{"load_binary: " + what};
  };

  char magic[4];
  in.read(magic, 4);
  if (!in || std::string_view{magic, 4} != std::string_view{kMagic, 4}) {
    throw rejected("bad magic (not a socmix binary graph)");
  }
  std::uint64_t num_offsets = 0;
  std::uint64_t num_neighbors = 0;
  std::vector<EdgeIndex> offsets;
  try {
    num_offsets = read_u64(in);
    num_neighbors = read_u64(in);
    // Plausibility before allocation: a garbage header must not turn into
    // a terabyte-sized vector (bad_alloc at best, OOM-kill at worst).
    constexpr std::uint64_t kMaxPlausible = std::uint64_t{1} << 36;  // 64G entries
    if (num_offsets == 0 || num_offsets > kMaxPlausible || num_neighbors > kMaxPlausible) {
      throw std::runtime_error{"implausible header sizes (offsets=" +
                               std::to_string(num_offsets) +
                               ", neighbors=" + std::to_string(num_neighbors) + ")"};
    }
    offsets.resize(num_offsets);
    for (auto& off : offsets) off = read_u64(in);
  } catch (const std::runtime_error& e) {
    throw rejected(e.what());
  }
  std::vector<NodeId> neighbors(num_neighbors);
  for (auto& v : neighbors) {
    char buf[4];
    in.read(buf, 4);
    if (!in) throw rejected("truncated stream (neighbors)");
    NodeId x = 0;
    for (int i = 0; i < 4; ++i)
      x |= static_cast<NodeId>(static_cast<unsigned char>(buf[i])) << (8 * i);
    v = x;
  }
  // Structural validation: the CSR invariants every kernel indexes by.
  if (offsets.front() != 0 || offsets.back() != num_neighbors) {
    throw rejected("corrupt CSR (offset endpoints disagree with neighbor count)");
  }
  const NodeId n = static_cast<NodeId>(num_offsets - 1);
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) throw rejected("corrupt CSR (non-monotone offsets)");
  }
  for (const NodeId v : neighbors) {
    if (v >= n) throw rejected("corrupt CSR (neighbor id out of range)");
  }
  return Graph::from_csr(std::move(offsets), std::move(neighbors));
}

void save_binary_file(const Graph& g, const std::string& path) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error{"save_binary_file: cannot open " + path};
  save_binary(g, out);
}

Graph load_binary_file(const std::string& path) {
  resilience::fault_point("graph.load");
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    SOCMIX_COUNTER_ADD("graph.io.load_failures", 1);
    throw std::runtime_error{"load_binary_file: cannot open " + path};
  }
  return load_binary(in);
}

}  // namespace socmix::graph
