// Weighted simple undirected graphs.
//
// The paper's Facebook A/B datasets come from Wilson et al.'s *interaction*
// graphs — friendship links weighted by how much the endpoints actually
// communicate. Random walks on such graphs step with probability
// proportional to edge weight, which concentrates walks on strong (mostly
// intra-community) ties and slows mixing further. This container carries
// the weights; linalg/weighted_operator.hpp and markov/weighted_evolution.*
// carry the weighted chain.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace socmix::graph {

/// One weighted undirected edge.
struct WeightedEdge {
  NodeId u = 0;
  NodeId v = 0;
  double weight = 1.0;
};

/// Immutable weighted simple undirected graph (CSR + parallel weights).
/// Invariants: sorted neighbor lists, no self-loops, symmetric weights
/// (w(u,v) == w(v,u)), all weights > 0.
class WeightedGraph {
 public:
  WeightedGraph() = default;

  /// Builds from weighted edges: self-loops dropped, duplicate {u,v}
  /// entries (either orientation) have their weights *summed*, and
  /// non-positive final weights are rejected.
  [[nodiscard]] static WeightedGraph from_edges(std::vector<WeightedEdge> edges,
                                                NodeId num_nodes = 0);

  /// Lifts an unweighted graph with unit weights — the weighted chain then
  /// coincides exactly with the simple chain (tested).
  [[nodiscard]] static WeightedGraph from_graph(const Graph& g);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }
  [[nodiscard]] EdgeIndex num_edges() const noexcept { return neighbors_.size() / 2; }

  [[nodiscard]] NodeId degree(NodeId v) const noexcept {
    return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
  }

  /// Weighted degree: sum of incident edge weights.
  [[nodiscard]] double strength(NodeId v) const noexcept { return strength_[v]; }

  /// Sum of all strengths (= 2 * total edge weight); the denominator of
  /// the weighted stationary distribution.
  [[nodiscard]] double total_strength() const noexcept { return total_strength_; }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return {neighbors_.data() + offsets_[v], neighbors_.data() + offsets_[v + 1]};
  }
  [[nodiscard]] std::span<const double> weights(NodeId v) const noexcept {
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] std::span<const EdgeIndex> offsets() const noexcept { return offsets_; }
  [[nodiscard]] std::span<const NodeId> raw_neighbors() const noexcept {
    return neighbors_;
  }
  [[nodiscard]] std::span<const double> raw_weights() const noexcept { return weights_; }

  /// The unweighted skeleton (same topology, weights forgotten).
  [[nodiscard]] Graph skeleton() const;

 private:
  std::vector<EdgeIndex> offsets_;
  std::vector<NodeId> neighbors_;
  std::vector<double> weights_;
  std::vector<double> strength_;
  double total_strength_ = 0.0;
};

}  // namespace socmix::graph
