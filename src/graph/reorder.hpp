// Locality-aware vertex reordering for the CSR compute kernels.
//
// Every hot kernel in the pipeline is a sparse gather over the CSR: per
// edge (i, j) it loads a value keyed by the *label* of the neighbor. The
// labels a generator or crawl happens to assign are arbitrary, so those
// gathers stride through a multi-MB array with no reuse. Relabeling the
// graph so that adjacent vertices get nearby labels turns the same gather
// stream into one with strong temporal locality — the standard
// cache-blocking lever for irregular SpMV/SpMM workloads.
//
// Three orderings are provided:
//  * reverse Cuthill-McKee (kRcm) — per-component BFS from a
//    pseudo-peripheral start, neighbors in ascending-degree order,
//    reversed. Minimizes (heuristically) the matrix bandwidth; the best
//    default for community-structured graphs.
//  * degree sort (kDegree) — hubs first. Concentrates the hottest gather
//    targets in one small prefix of the array that stays cache-resident.
//  * BFS clustering (kBfs) — plain per-component BFS order; groups
//    vertices by hop distance, a cheap community-ish clustering.
//
// All orderings are deterministic functions of the graph alone. A
// permutation maps OLD label -> NEW label; apply_permutation produces a
// relabeled Graph whose adjacency lists are sorted, so the result upholds
// every Graph invariant and kernels run on it unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace socmix::graph {

enum class ReorderMode : std::uint32_t {
  kNone = 0,
  kDegree = 1,
  kRcm = 2,
  kBfs = 3,
};

/// Canonical flag spelling ("none", "degree", "rcm", "bfs").
[[nodiscard]] std::string_view reorder_mode_name(ReorderMode mode) noexcept;

/// Parses a --reorder flag value; empty parses as kNone (the default),
/// anything unknown is nullopt.
[[nodiscard]] std::optional<ReorderMode> parse_reorder_mode(std::string_view name) noexcept;

/// Computes the permutation (perm[old] = new) for `mode`. kNone returns
/// the identity. Deterministic in the graph alone.
[[nodiscard]] std::vector<NodeId> reorder_permutation(const Graph& g, ReorderMode mode);

/// Inverse permutation: out[perm[v]] = v. Throws std::invalid_argument if
/// `perm` is not a bijection on [0, perm.size()).
[[nodiscard]] std::vector<NodeId> invert_permutation(std::span<const NodeId> perm);

/// Relabels `g` under `perm` (old -> new): vertex v becomes perm[v], each
/// adjacency list is re-sorted ascending. The result satisfies all Graph
/// invariants; applying `invert_permutation(perm)` round-trips to a CSR
/// bit-identical to the original. Throws if perm is not a bijection of
/// size num_nodes().
[[nodiscard]] Graph apply_permutation(const Graph& g, std::span<const NodeId> perm);

/// A deterministic pseudo-random permutation of [0, n) seeded by `seed` —
/// the "crawl order" null model benches and tests use to simulate the
/// arbitrary labeling of real edge-list datasets.
[[nodiscard]] std::vector<NodeId> shuffle_permutation(NodeId n, std::uint64_t seed);

/// How label-local a CSR layout is: the mean |i - j| over all half-edges
/// (what the gather working set tracks) and the max (the bandwidth).
struct LocalityStats {
  double avg_neighbor_distance = 0.0;
  std::uint64_t bandwidth = 0;
};
[[nodiscard]] LocalityStats locality_stats(const Graph& g) noexcept;

/// A graph relabeled for locality, with enough context to translate node
/// ids at API boundaries. For kNone, `perm` stays empty and `graph` is an
/// unmodified copy-free view holder — use `active()` on the original.
struct ReorderedGraph {
  Graph graph;               ///< relabeled CSR (empty for kNone)
  std::vector<NodeId> perm;  ///< old -> new; empty means identity
  ReorderMode mode = ReorderMode::kNone;

  [[nodiscard]] bool identity() const noexcept { return perm.empty(); }
  [[nodiscard]] NodeId to_new(NodeId old_id) const noexcept {
    return identity() ? old_id : perm[old_id];
  }
  /// The graph kernels should run on: the relabeled one, or `original`
  /// untouched when the mode is kNone (no copy is ever made then).
  [[nodiscard]] const Graph& active(const Graph& original) const noexcept {
    return identity() ? original : graph;
  }
};

/// Computes the ordering, relabels, and publishes `reorder.*` metrics
/// (mode, relabel seconds, bandwidth and average neighbor-label distance
/// before/after) to the obs registry. kNone short-circuits: no copy, no
/// metrics beyond reorder.mode.
[[nodiscard]] ReorderedGraph reorder_graph(const Graph& g, ReorderMode mode);

}  // namespace socmix::graph
