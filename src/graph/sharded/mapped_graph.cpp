#include "graph/sharded/mapped_graph.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "graph/sharded/format.hpp"
#include "obs/obs.hpp"
#include "resilience/fault.hpp"
#include "util/checksum.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SOCMIX_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SOCMIX_HAVE_MMAP 0
#endif

namespace socmix::graph::sharded {

namespace {

[[noreturn]] void rejected(const std::string& what) {
  SOCMIX_COUNTER_ADD("graph.io.smxg_rejected", 1);
  SOCMIX_COUNTER_ADD("graph.io.load_failures", 1);
  throw std::runtime_error{"smxg: " + what};
}

[[nodiscard]] std::uint32_t load_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

[[nodiscard]] std::uint64_t load_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

PageFaults process_page_faults() noexcept {
#if SOCMIX_HAVE_MMAP
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    return {static_cast<std::uint64_t>(usage.ru_minflt),
            static_cast<std::uint64_t>(usage.ru_majflt)};
  }
#endif
  return {};
}

MappedGraph::MappedGraph(const std::string& path) : MappedGraph(path, Options{}) {}

MappedGraph::MappedGraph(const std::string& path, Options options) {
  resilience::fault_point("graph.load");
  try {
    load(path, options);
  } catch (...) {
    unmap();
    throw;
  }
}

MappedGraph::~MappedGraph() { unmap(); }

void MappedGraph::unmap() noexcept {
#if SOCMIX_HAVE_MMAP
  if (base_ != nullptr) ::munmap(base_, mapped_bytes_);
#endif
  base_ = nullptr;
  mapped_bytes_ = 0;
  heap_.clear();
  view_ = Graph{};
  adjc_ = adjc::AdjcView{};
  sections_.clear();
}

void MappedGraph::steal(MappedGraph& other) noexcept {
  base_ = other.base_;
  mapped_bytes_ = other.mapped_bytes_;
  heap_ = std::move(other.heap_);
  view_ = std::move(other.view_);
  pack_plan_ = std::move(other.pack_plan_);
  adjc_ = other.adjc_;
  sections_ = std::move(other.sections_);
  fingerprint_ = other.fingerprint_;
  offsets_file_offset_ = other.offsets_file_offset_;
  adjacency_file_offset_ = other.adjacency_file_offset_;
  other.base_ = nullptr;
  other.mapped_bytes_ = 0;
  other.view_ = Graph{};
  other.adjc_ = adjc::AdjcView{};
  other.sections_.clear();
}

void MappedGraph::load(const std::string& path, Options options) {
  std::error_code ec;
  const auto disk_size = std::filesystem::file_size(path, ec);
  if (ec) rejected("cannot stat " + path);
  if (disk_size < kHeaderBytes) rejected("truncated header in " + path);

  // Validate the header from a plain read before trusting any size for
  // the mapping itself.
  std::byte head[kHeaderBytes];
  {
    std::ifstream in{path, std::ios::binary};
    if (!in) rejected("cannot open " + path);
    in.read(reinterpret_cast<char*>(head), kHeaderBytes);
    if (!in) rejected("truncated header in " + path);
  }
  if (load_u32(head + 0) != kMagic) rejected("bad magic (not a .smxg container)");
  if (load_u32(head + 4) != kEndianTag) {
    rejected("wrong-endian container (endian tag mismatch)");
  }
  if (util::crc32(std::span<const std::byte>{head, 60}) != load_u32(head + 60)) {
    rejected("header CRC mismatch");
  }
  const std::uint32_t version = load_u32(head + 8);
  if (version != kVersion && version != kVersionCompressed) {
    rejected("unsupported version " + std::to_string(version) + " (expected " +
             std::to_string(kVersion) + " or " + std::to_string(kVersionCompressed) +
             ")");
  }
  const bool compressed = version == kVersionCompressed;
  const std::uint32_t num_sections = load_u32(head + 12);
  const std::uint64_t num_nodes = load_u64(head + 16);
  const std::uint64_t num_half_edges = load_u64(head + 24);
  const std::uint64_t file_bytes = load_u64(head + 40);
  fingerprint_ = load_u64(head + 48);

  // Plausibility before any allocation or mapping (the io.cpp discipline:
  // a garbage header must not turn into a terabyte mapping).
  constexpr std::uint64_t kMaxPlausible = std::uint64_t{1} << 36;
  if (num_nodes == 0 || num_nodes > kMaxPlausible || num_half_edges > kMaxPlausible) {
    rejected("implausible header sizes (nodes=" + std::to_string(num_nodes) +
             ", half_edges=" + std::to_string(num_half_edges) + ")");
  }
  if (num_sections < 3 || num_sections > 16) {
    rejected("implausible section count " + std::to_string(num_sections));
  }
  if (disk_size < file_bytes) {
    rejected("file shorter than header claims (" + std::to_string(disk_size) + " < " +
             std::to_string(file_bytes) + " bytes)");
  }
  if (disk_size != file_bytes) rejected("file size disagrees with header");
  const std::uint64_t table_end =
      kHeaderBytes + std::uint64_t{num_sections} * kSectionEntryBytes;
  if (table_end > file_bytes) rejected("section table exceeds file");

  // Map (or, without mmap, read) the whole file.
  const std::byte* base = nullptr;
#if SOCMIX_HAVE_MMAP
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) rejected("cannot open " + path);
    void* mapping =
        ::mmap(nullptr, static_cast<std::size_t>(file_bytes), PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);
    if (mapping == MAP_FAILED) rejected("mmap failed for " + path);
    base_ = mapping;
    mapped_bytes_ = static_cast<std::size_t>(file_bytes);
    base = static_cast<const std::byte*>(mapping);
  }
#else
  {
    heap_.resize(static_cast<std::size_t>(file_bytes));
    std::ifstream in{path, std::ios::binary};
    if (!in) rejected("cannot open " + path);
    in.read(reinterpret_cast<char*>(heap_.data()),
            static_cast<std::streamsize>(file_bytes));
    if (!in) rejected("short read of " + path);
    base = heap_.data();
  }
#endif

  SectionInfo offs{};
  SectionInfo adj{};
  SectionInfo cadj{};
  SectionInfo shrd{};
  sections_.clear();
  sections_.reserve(num_sections);
  for (std::uint32_t i = 0; i < num_sections; ++i) {
    const std::byte* entry = base + kHeaderBytes + i * kSectionEntryBytes;
    SectionInfo section;
    section.id = load_u32(entry + 0);
    section.crc = load_u32(entry + 4);
    section.offset = load_u64(entry + 8);
    section.bytes = load_u64(entry + 16);
    if (section.offset % kPayloadAlign != 0) rejected("misaligned section payload");
    if (section.offset < table_end || section.offset + section.bytes < section.offset ||
        section.offset + section.bytes > file_bytes) {
      rejected("section payload out of bounds");
    }
    if (section.id == kSectionOffsets) offs = section;
    if (section.id == kSectionAdjacency) adj = section;
    if (section.id == kSectionAdjacencyCompressed) cadj = section;
    if (section.id == kSectionShards) shrd = section;
    sections_.push_back(section);
  }
  // Exactly one adjacency representation, matched to the format version
  // (a v1 file smuggling an ADJC section — or vice versa — is rejected,
  // not silently preferred one way).
  if (compressed && adj.id != 0) rejected("compressed container carries ADJ4");
  if (!compressed && cadj.id != 0) rejected("uncompressed container carries ADJC");
  if (offs.id == 0 || shrd.id == 0 || (compressed ? cadj.id : adj.id) == 0) {
    rejected(compressed ? "missing required section (OFFS/ADJC/SHRD)"
                        : "missing required section (OFFS/ADJ4/SHRD)");
  }
  if (offs.bytes != (num_nodes + 1) * sizeof(EdgeIndex)) {
    rejected("offsets section size disagrees with header");
  }
  if (!compressed && adj.bytes != num_half_edges * sizeof(NodeId)) {
    rejected("adjacency section size disagrees with header");
  }
  const std::uint32_t pack_shards = load_u32(head + 32);
  if (pack_shards == 0 || shrd.bytes != (std::uint64_t{pack_shards} + 1) * 8) {
    rejected("shard section size disagrees with header");
  }

  if (options.verify) {
    const auto check = [&](const SectionInfo& s, const char* name) {
      const std::span<const std::byte> payload{base + s.offset,
                                               static_cast<std::size_t>(s.bytes)};
      if (util::crc32(payload) != s.crc) {
        rejected(std::string{"section CRC mismatch ("} + name + ")");
      }
    };
    check(offs, "OFFS");
    if (compressed) {
      check(cadj, "ADJC");
    } else {
      check(adj, "ADJ4");
    }
    check(shrd, "SHRD");
  }

  // Structural validation: the CSR invariants every kernel indexes by.
  const auto* offsets = reinterpret_cast<const EdgeIndex*>(base + offs.offset);
  const auto* neighbors =
      compressed ? nullptr : reinterpret_cast<const NodeId*>(base + adj.offset);
  const auto* bounds = reinterpret_cast<const std::uint64_t*>(base + shrd.offset);
  const auto n = static_cast<NodeId>(num_nodes);
  if (offsets[0] != 0 || offsets[num_nodes] != num_half_edges) {
    rejected("corrupt CSR (offset endpoints disagree with header)");
  }
  for (std::uint64_t i = 0; i < num_nodes; ++i) {
    if (offsets[i] > offsets[i + 1]) rejected("corrupt CSR (non-monotone offsets)");
  }
  if (options.verify && !compressed) {
    for (std::uint64_t e = 0; e < num_half_edges; ++e) {
      if (neighbors[e] >= n) rejected("corrupt CSR (neighbor id out of range)");
    }
  }
  if (compressed) {
    // Geometry-only validation (head fields, group index monotone and in
    // bounds, slack present); the coded bytes themselves are covered by
    // the section CRC above and re-validated group-by-group at decode.
    const auto* payload = reinterpret_cast<const std::uint8_t*>(base + cadj.offset);
    const std::string err = adjc::parse_adjc(payload, cadj.bytes, num_nodes,
                                             num_half_edges, adjc_);
    if (!err.empty()) rejected(err);
  }
  if (bounds[0] != 0 || bounds[pack_shards] != num_nodes) {
    rejected("corrupt shard bounds (endpoints)");
  }
  for (std::uint32_t s = 0; s < pack_shards; ++s) {
    if (bounds[s] > bounds[s + 1]) rejected("corrupt shard bounds (non-monotone)");
  }

  pack_plan_.bounds.assign(bounds, bounds + pack_shards + 1);
  offsets_file_offset_ = offs.offset;
  adjacency_file_offset_ = compressed ? cadj.offset : adj.offset;
  view_ = compressed
              ? Graph::borrowed_headless({offsets, num_nodes + 1}, num_half_edges)
              : Graph::borrowed({offsets, num_nodes + 1}, {neighbors, num_half_edges});

  SOCMIX_COUNTER_ADD("graph.io.smxg_loaded", 1);
  SOCMIX_GAUGE_SET("graph.io.smxg_bytes", file_bytes);
  // Validation streamed the whole file through the page cache; drop it so
  // a windowed run starts from cold residency.
  release_all();
}

MappedGraph::ByteSpan MappedGraph::offsets_span(NodeId begin, NodeId end) const noexcept {
  return {offsets_file_offset_ + std::uint64_t{begin} * sizeof(EdgeIndex),
          offsets_file_offset_ + (std::uint64_t{end} + 1) * sizeof(EdgeIndex)};
}

MappedGraph::ByteSpan MappedGraph::adjacency_span(NodeId begin, NodeId end) const noexcept {
  if (adjc_.present()) {
    const auto [lo, hi] = adjc_.byte_window(begin, end);
    return {adjacency_file_offset_ + lo, adjacency_file_offset_ + hi};
  }
  const auto offsets = view_.offsets();
  return {adjacency_file_offset_ + offsets[begin] * sizeof(NodeId),
          adjacency_file_offset_ + offsets[end] * sizeof(NodeId)};
}

std::size_t MappedGraph::window_bytes(NodeId begin, NodeId end) const noexcept {
  if (begin >= end || view_.num_nodes() == 0) return 0;
  const ByteSpan off = offsets_span(begin, end);
  const ByteSpan adj = adjacency_span(begin, end);
  return static_cast<std::size_t>((off.hi - off.lo) + (adj.hi - adj.lo));
}

namespace {

#if SOCMIX_HAVE_MMAP
void advise_span(const std::byte* base, std::size_t mapped_bytes, std::uint64_t lo,
                 std::uint64_t hi, int advice) noexcept {
  if (lo >= hi) return;
  const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  std::uint64_t start = lo & ~(page - 1);
  std::uint64_t end = (hi + page - 1) & ~(page - 1);
  end = std::min<std::uint64_t>(end, mapped_bytes);
  if (start >= end) return;
  // const_cast: madvise takes void* but never writes through it.
  if (::madvise(const_cast<std::byte*>(base) + start,
                static_cast<std::size_t>(end - start), advice) != 0) {
    // A refused hint (EAGAIN under memory pressure, exotic filesystems,
    // locked pages) just means the kernel pages on demand instead —
    // correctness is unaffected, so count it and carry on.
    SOCMIX_COUNTER_ADD("graph.io.smxg_advise_failed", 1);
  }
}
#endif

}  // namespace

void MappedGraph::advise_rows(NodeId begin, NodeId end) const noexcept {
#if SOCMIX_HAVE_MMAP
  if (base_ == nullptr || begin >= end) return;
  const auto* base = static_cast<const std::byte*>(base_);
  const ByteSpan off = offsets_span(begin, end);
  const ByteSpan adj = adjacency_span(begin, end);
  advise_span(base, mapped_bytes_, off.lo, off.hi, MADV_WILLNEED);
  advise_span(base, mapped_bytes_, adj.lo, adj.hi, MADV_WILLNEED);
#else
  (void)begin;
  (void)end;
#endif
}

std::size_t MappedGraph::prefetch_rows(NodeId begin, NodeId end) const noexcept {
#if SOCMIX_HAVE_MMAP
  if (base_ == nullptr || begin >= end) return 0;
  advise_rows(begin, end);
  // madvise(WILLNEED) only queues readahead; touching one byte per page
  // blocks *this* thread on the actual I/O, which is exactly the point:
  // the pipeline thread absorbs the faults so the compute thread finds
  // the window resident.
  const auto* base = static_cast<const std::byte*>(base_);
  const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  std::size_t walked = 0;
  unsigned char sink = 0;
  const auto touch = [&](ByteSpan span) {
    const std::uint64_t hi = std::min<std::uint64_t>(span.hi, mapped_bytes_);
    if (span.lo >= hi) return;
    for (std::uint64_t p = span.lo & ~(page - 1); p < hi; p += page) {
      sink ^= *reinterpret_cast<const volatile unsigned char*>(base + p);
      walked += static_cast<std::size_t>(std::min<std::uint64_t>(page, hi - p));
    }
  };
  touch(offsets_span(begin, end));
  touch(adjacency_span(begin, end));
  // Keep the reads observable so the loop cannot be optimized away.
  asm volatile("" : : "r"(sink));
  return walked;
#else
  (void)begin;
  (void)end;
  return 0;
#endif
}

void MappedGraph::release_rows(NodeId begin, NodeId end) const noexcept {
#if SOCMIX_HAVE_MMAP
  if (base_ == nullptr || begin >= end) return;
  const auto* base = static_cast<const std::byte*>(base_);
  const ByteSpan off = offsets_span(begin, end);
  const ByteSpan adj = adjacency_span(begin, end);
  advise_span(base, mapped_bytes_, off.lo, off.hi, MADV_DONTNEED);
  advise_span(base, mapped_bytes_, adj.lo, adj.hi, MADV_DONTNEED);
#else
  (void)begin;
  (void)end;
#endif
}

void MappedGraph::release_all() const noexcept {
#if SOCMIX_HAVE_MMAP
  if (base_ == nullptr) return;
  if (::madvise(base_, mapped_bytes_, MADV_DONTNEED) != 0) {
    SOCMIX_COUNTER_ADD("graph.io.smxg_advise_failed", 1);
  }
#endif
}

}  // namespace socmix::graph::sharded
