#include "graph/sharded/plan.hpp"

#include <algorithm>

#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace socmix::graph {

std::optional<ShardPolicy> parse_shard_policy(std::string_view name) noexcept {
  if (name.empty() || name == "auto") return ShardPolicy{};
  if (name == "off") return ShardPolicy{.mode = ShardPolicy::Mode::kOff};
  const auto count = util::parse_i64(name);
  if (!count || *count < 1 || *count > ShardPolicy::kMaxShards) return std::nullopt;
  return ShardPolicy{.mode = ShardPolicy::Mode::kFixed,
                     .count = static_cast<std::uint32_t>(*count)};
}

std::string shard_policy_name(const ShardPolicy& policy) {
  switch (policy.mode) {
    case ShardPolicy::Mode::kAuto: return "auto";
    case ShardPolicy::Mode::kOff: return "off";
    case ShardPolicy::Mode::kFixed: return std::to_string(policy.count);
  }
  return "auto";
}

std::uint32_t resolve_shard_count(const ShardPolicy& policy, std::size_t csr_bytes,
                                  NodeId n, std::uint32_t resident_copies) noexcept {
  if (n == 0) return 1;
  std::uint32_t shards = 1;
  switch (policy.mode) {
    case ShardPolicy::Mode::kOff:
      return 1;
    case ShardPolicy::Mode::kFixed:
      shards = std::max<std::uint32_t>(1, policy.count);
      break;
    case ShardPolicy::Mode::kAuto: {
      // Keep resident_copies windows inside the 2-copy sweep's envelope:
      // shards = ceil(csr_bytes * copies / (2 * kAutoShardBytes)), which
      // reduces to the classic ceil(csr_bytes / kAutoShardBytes) at 2.
      const std::size_t copies = std::max<std::uint32_t>(2, resident_copies);
      const std::size_t envelope = 2 * ShardPolicy::kAutoShardBytes;
      shards = static_cast<std::uint32_t>(
          std::min<std::size_t>((csr_bytes * copies + envelope - 1) / envelope,
                                ShardPolicy::kMaxShards));
      break;
    }
  }
  shards = std::min<std::uint32_t>(shards, ShardPolicy::kMaxShards);
  // More shards than rows would only manufacture empty shards.
  return std::max<std::uint32_t>(1, std::min<std::uint32_t>(shards, n));
}

std::uint64_t shard_context_word(std::uint32_t resolved_shards) noexcept {
  if (resolved_shards <= 1) return 0;
  // 'SHRD' tag so the word cannot collide with the frontier/precision
  // words it is hash-combined alongside.
  return util::hash_combine(std::uint64_t{0x53485244}, resolved_shards);
}

ShardPlan ShardPlan::single(NodeId n) { return ShardPlan{.bounds = {0, n}}; }

ShardPlan ShardPlan::balanced(std::span<const EdgeIndex> offsets, std::uint32_t shards) {
  const NodeId n = offsets.empty() ? 0 : static_cast<NodeId>(offsets.size() - 1);
  if (shards <= 1 || n == 0) return single(n);
  const EdgeIndex total = offsets.back();
  ShardPlan plan;
  plan.bounds.resize(static_cast<std::size_t>(shards) + 1);
  plan.bounds.front() = 0;
  plan.bounds.back() = n;
  for (std::uint32_t s = 1; s < shards; ++s) {
    // First row whose cumulative half-edge count reaches s/shards of the
    // total; clamped monotone so empty rows cannot reorder bounds. The
    // split computes floor(total*s/shards) without 128-bit arithmetic.
    const EdgeIndex target =
        (total / shards) * s + ((total % shards) * s) / shards;
    const auto it = std::lower_bound(offsets.begin(), offsets.end(), target);
    auto row = static_cast<NodeId>(std::distance(offsets.begin(), it));
    row = std::clamp(row, plan.bounds[s - 1], n);
    plan.bounds[s] = row;
  }
  return plan;
}

EdgeIndex count_boundary_half_edges(const Graph& g, const ShardPlan& plan) {
  const std::uint32_t shards = plan.num_shards();
  if (shards <= 1) return 0;
  EdgeIndex boundary = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const NodeId lo = plan.begin(s);
    const NodeId hi = plan.end(s);
    for (NodeId u = lo; u < hi; ++u) {
      for (const NodeId v : g.neighbors(u)) {
        if (v < lo || v >= hi) ++boundary;
      }
    }
  }
  return boundary;
}

}  // namespace socmix::graph
