// Read-only memory-mapped view of a `.smxg` sharded CSR container.
//
// MappedGraph validates the container fully up front (header CRC, per-
// section CRCs, CSR structural invariants — every failure mode rejects
// with a graph.io.* metric, see format.hpp), then exposes the on-disk
// arrays as a borrowed graph::Graph with zero copies: the kernels index
// the file's pages directly and the OS pages them in on demand. The
// sharded engines drive residency explicitly — advise_rows(WILLNEED) on
// the shard about to be swept, release_rows(DONTNEED) on the one just
// finished, prefetch_rows to additionally fault the window in from a
// pipeline thread — so a graph far larger than RAM streams through a
// bounded window instead of thrashing. madvise failures are counted
// (graph.io.smxg_advise_failed) and degrade to the sync paging path;
// they are hints, never correctness. On platforms without mmap the
// container degrades to a heap read of the whole file (same validation,
// same view, no residency control).
//
// Compressed containers (format version 2, ADJC section): the view is
// headless — row offsets map directly, neighbor ids stay stream-vbyte
// coded on disk and are decoded per shard window by linalg::ShardPipeline
// into scratch that is bit-identical to the raw array. advise/release/
// window accounting automatically cover the compressed byte ranges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/sharded/adjc.hpp"
#include "graph/sharded/plan.hpp"
#include "util/aligned.hpp"

namespace socmix::graph::sharded {

/// Process-wide page-fault totals (getrusage), for fault-delta metrics
/// around sharded sweeps. Zeros where the platform has no getrusage.
struct PageFaults {
  std::uint64_t minor = 0;
  std::uint64_t major = 0;
};
[[nodiscard]] PageFaults process_page_faults() noexcept;

/// One validated section-table row (`graph_pack --verify` reporting).
struct SectionInfo {
  std::uint32_t id = 0;
  std::uint32_t crc = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
};

class MappedGraph {
 public:
  struct Options {
    /// Verify section CRCs and scan neighbor ids (one sequential pass
    /// over the file at load; the cheap structural checks always run).
    /// Compressed adjacency has no id scan here — the section CRC covers
    /// the coded bytes and the decoder re-validates every group it
    /// expands (gap overflow, id range, exact byte consumption).
    bool verify = true;
  };

  MappedGraph() = default;
  /// Maps and validates `path`; throws std::runtime_error (after bumping
  /// graph.io.smxg_rejected / graph.io.load_failures) on any defect.
  explicit MappedGraph(const std::string& path);
  MappedGraph(const std::string& path, Options options);
  ~MappedGraph();

  MappedGraph(const MappedGraph&) = delete;
  MappedGraph& operator=(const MappedGraph&) = delete;
  MappedGraph(MappedGraph&& other) noexcept { steal(other); }
  MappedGraph& operator=(MappedGraph&& other) noexcept {
    if (this != &other) {
      unmap();
      steal(other);
    }
    return *this;
  }

  /// Borrowed CSR view over the mapped arrays; valid while *this lives.
  /// Headless (view().headless()) when the container is compressed.
  [[nodiscard]] const Graph& view() const noexcept { return view_; }

  /// The pack-time shard plan stored in the file (>= 1 shard). Runtime
  /// policies may re-plan with any count; this is the packer's default.
  [[nodiscard]] const ShardPlan& pack_plan() const noexcept { return pack_plan_; }

  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fingerprint_; }

  /// True when backed by mmap (advise/release are no-ops otherwise).
  [[nodiscard]] bool is_mapped() const noexcept { return base_ != nullptr; }

  /// True when the adjacency is ADJC-compressed (format version 2).
  [[nodiscard]] bool compressed() const noexcept { return adjc_.present(); }

  /// The parsed compressed-adjacency geometry (present() iff compressed).
  [[nodiscard]] const adjc::AdjcView& adjc_view() const noexcept { return adjc_; }

  /// The validated section table (ids, CRCs, extents) for verify tooling.
  [[nodiscard]] const std::vector<SectionInfo>& sections() const noexcept {
    return sections_;
  }

  /// Bytes of container payload backing rows [begin, end) — the residency
  /// window a shard sweep needs (compressed bytes when ADJC).
  [[nodiscard]] std::size_t window_bytes(NodeId begin, NodeId end) const noexcept;

  /// madvise(WILLNEED) the pages backing rows [begin, end).
  void advise_rows(NodeId begin, NodeId end) const noexcept;
  /// advise_rows, then fault the window in by touching one byte per page —
  /// the blocking read a pipeline thread performs so the compute thread
  /// never stalls on disk. Returns the bytes walked (0 off-mmap).
  std::size_t prefetch_rows(NodeId begin, NodeId end) const noexcept;
  /// madvise(DONTNEED) the pages backing rows [begin, end).
  void release_rows(NodeId begin, NodeId end) const noexcept;
  /// madvise(DONTNEED) the whole mapping (load-time validation warms the
  /// page cache; this resets residency before a windowed run).
  void release_all() const noexcept;

 private:
  struct ByteSpan {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
  };

  void load(const std::string& path, Options options);
  void unmap() noexcept;
  void steal(MappedGraph& other) noexcept;
  [[nodiscard]] ByteSpan offsets_span(NodeId begin, NodeId end) const noexcept;
  [[nodiscard]] ByteSpan adjacency_span(NodeId begin, NodeId end) const noexcept;

  void* base_ = nullptr;            // mmap base (null on the heap fallback)
  std::size_t mapped_bytes_ = 0;
  util::aligned_vector<std::byte> heap_;  // fallback storage
  Graph view_;
  ShardPlan pack_plan_;
  adjc::AdjcView adjc_;
  std::vector<SectionInfo> sections_;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t offsets_file_offset_ = 0;  // payload offsets for advise math
  std::uint64_t adjacency_file_offset_ = 0;
};

}  // namespace socmix::graph::sharded
