// Read-only memory-mapped view of a `.smxg` sharded CSR container.
//
// MappedGraph validates the container fully up front (header CRC, per-
// section CRCs, CSR structural invariants — every failure mode rejects
// with a graph.io.* metric, see format.hpp), then exposes the on-disk
// arrays as a borrowed graph::Graph with zero copies: the kernels index
// the file's pages directly and the OS pages them in on demand. The
// sharded engines drive residency explicitly — advise_rows(WILLNEED) on
// the shard about to be swept, release_rows(DONTNEED) on the one just
// finished — so a graph far larger than RAM streams through a bounded
// window instead of thrashing. On platforms without mmap the container
// degrades to a heap read of the whole file (same validation, same view,
// no residency control).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/sharded/plan.hpp"
#include "util/aligned.hpp"

namespace socmix::graph::sharded {

/// Process-wide page-fault totals (getrusage), for fault-delta metrics
/// around sharded sweeps. Zeros where the platform has no getrusage.
struct PageFaults {
  std::uint64_t minor = 0;
  std::uint64_t major = 0;
};
[[nodiscard]] PageFaults process_page_faults() noexcept;

class MappedGraph {
 public:
  struct Options {
    /// Verify section CRCs and scan neighbor ids (one sequential pass
    /// over the file at load; the cheap structural checks always run).
    bool verify = true;
  };

  MappedGraph() = default;
  /// Maps and validates `path`; throws std::runtime_error (after bumping
  /// graph.io.smxg_rejected / graph.io.load_failures) on any defect.
  explicit MappedGraph(const std::string& path);
  MappedGraph(const std::string& path, Options options);
  ~MappedGraph();

  MappedGraph(const MappedGraph&) = delete;
  MappedGraph& operator=(const MappedGraph&) = delete;
  MappedGraph(MappedGraph&& other) noexcept { steal(other); }
  MappedGraph& operator=(MappedGraph&& other) noexcept {
    if (this != &other) {
      unmap();
      steal(other);
    }
    return *this;
  }

  /// Borrowed CSR view over the mapped arrays; valid while *this lives.
  [[nodiscard]] const Graph& view() const noexcept { return view_; }

  /// The pack-time shard plan stored in the file (>= 1 shard). Runtime
  /// policies may re-plan with any count; this is the packer's default.
  [[nodiscard]] const ShardPlan& pack_plan() const noexcept { return pack_plan_; }

  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fingerprint_; }

  /// True when backed by mmap (advise/release are no-ops otherwise).
  [[nodiscard]] bool is_mapped() const noexcept { return base_ != nullptr; }

  /// Bytes of CSR payload backing rows [begin, end) — the residency
  /// window a shard sweep needs.
  [[nodiscard]] std::size_t window_bytes(NodeId begin, NodeId end) const noexcept;

  /// madvise(WILLNEED) the pages backing rows [begin, end).
  void advise_rows(NodeId begin, NodeId end) const noexcept;
  /// madvise(DONTNEED) the pages backing rows [begin, end).
  void release_rows(NodeId begin, NodeId end) const noexcept;
  /// madvise(DONTNEED) the whole mapping (load-time validation warms the
  /// page cache; this resets residency before a windowed run).
  void release_all() const noexcept;

 private:
  void load(const std::string& path, Options options);
  void unmap() noexcept;
  void steal(MappedGraph& other) noexcept;

  void* base_ = nullptr;            // mmap base (null on the heap fallback)
  std::size_t mapped_bytes_ = 0;
  util::aligned_vector<std::byte> heap_;  // fallback storage
  Graph view_;
  ShardPlan pack_plan_;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t offsets_file_offset_ = 0;  // payload offsets for advise math
  std::uint64_t adjacency_file_offset_ = 0;
};

}  // namespace socmix::graph::sharded
