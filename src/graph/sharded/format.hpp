// The `.smxg` binary container: a memory-mappable sharded CSR.
//
// Layout (all integers little-endian; payloads 64-byte aligned so the
// mmap'ed arrays can be indexed in place with vector loads):
//
//   [ 64 B header ]
//   [ 32 B x num_sections section table ]
//   [ OFFS payload ]  (n+1) x u64   CSR row offsets
//   [ ADJ4 payload ]  2m    x u32   neighbor ids            (version 1)
//   [ ADJC payload ]  stream-vbyte delta-coded neighbors    (version 2)
//   [ SHRD payload ]  (S+1) x u64   pack-time shard row bounds
//
// A container carries exactly one adjacency section: raw ADJ4 under
// format version 1 (unchanged from PR 8), or the compressed ADJC form
// under version 2 (`graph_pack --compress`; layout in sharded/adjc.hpp).
// Version-1 readers fail closed on a version-2 file by the ordinary
// version check — compression is a format change, not a silent variant.
//
// Header (byte offsets):
//    0  u32  magic 'SMXG'
//    4  u32  endian tag 0x01020304 (a byte-swapped reader sees 0x04030201)
//    8  u32  format version (kVersion)
//   12  u32  num_sections
//   16  u64  num_nodes
//   24  u64  num_half_edges
//   32  u32  num_shards (pack-time default plan; runtime may re-plan)
//   36  u32  reserved
//   40  u64  file_bytes (total file size the header commits to)
//   48  u64  graph structural fingerprint
//   56  u32  reserved
//   60  u32  CRC-32 of header bytes [0, 60)
//
// Section table entry: u32 id, u32 payload CRC-32, u64 file offset,
// u64 payload bytes, u64 reserved.
//
// Every field a reader indexes by is validated before use and the
// payloads are CRC-checked, so a truncated, bit-rotted, version-skewed or
// foreign-endian file fails closed (graph.io.smxg_rejected) instead of
// mapping garbage into the kernels. See sharded/mapped_graph.hpp for the
// reader.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "graph/sharded/plan.hpp"

namespace socmix::graph::sharded {

inline constexpr std::uint32_t kMagic = 0x47584D53;      // 'S','M','X','G'
inline constexpr std::uint32_t kEndianTag = 0x01020304;  // reads back swapped on BE
inline constexpr std::uint32_t kVersion = 1;
/// Version stamped on containers whose adjacency is ADJC-compressed.
inline constexpr std::uint32_t kVersionCompressed = 2;
inline constexpr std::size_t kHeaderBytes = 64;
inline constexpr std::size_t kSectionEntryBytes = 32;
inline constexpr std::size_t kPayloadAlign = 64;

// Section ids ('OFFS', 'ADJ4', 'ADJC', 'SHRD' as little-endian fourccs).
inline constexpr std::uint32_t kSectionOffsets = 0x5346464F;
inline constexpr std::uint32_t kSectionAdjacency = 0x344A4441;
inline constexpr std::uint32_t kSectionAdjacencyCompressed = 0x434A4441;
inline constexpr std::uint32_t kSectionShards = 0x44524853;

struct WriteOptions {
  /// Emit the adjacency as a compressed ADJC section (format version 2)
  /// instead of the raw ADJ4 array.
  bool compress = false;
};

/// Writes `g` and its pack-time shard plan as a `.smxg` file (temp file +
/// atomic rename, like the resilience snapshots). `plan.dim()` must equal
/// `g.num_nodes()`. Payloads are streamed through incremental CRCs and
/// the header/section table patched in afterwards, so the writer's extra
/// memory stays O(one compression group) regardless of graph size.
/// Throws std::runtime_error on I/O failure.
void write_smxg_file(const std::string& path, const Graph& g, const ShardPlan& plan,
                     const WriteOptions& options);
void write_smxg_file(const std::string& path, const Graph& g, const ShardPlan& plan);

}  // namespace socmix::graph::sharded
