// Shard geometry for out-of-core evolution.
//
// A shard is a contiguous vertex range [bounds[s], bounds[s+1]) together
// with the CSR edge span those rows own. Contiguity is what makes the
// out-of-core sweep work: one shard's offsets/neighbors occupy one
// contiguous byte window of a `.smxg` file, so the sharded engines can
// madvise(WILLNEED) the next window and madvise(DONTNEED) the previous
// one while sweeping the current shard, keeping CSR residency near one
// shard regardless of graph size (see DESIGN.md "Sharded out-of-core
// evolution"). Shards partition rows, rows are independent within a
// sweep, and every kernel row body is unchanged — so shard geometry can
// never change an output bit, only the order pages stream from disk.
//
// ShardPolicy is the user-facing knob (--sharded auto|off|N): `auto`
// targets a fixed per-shard CSR byte budget (small graphs resolve to one
// shard, i.e. the dense in-memory path), `off` forces dense, `N` forces a
// shard count. The resolved count feeds shard_context_word so block
// checkpoints written under a different geometry classify stale.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace socmix::graph {

/// Whether (and how many ways) the evolution engines shard the CSR.
struct ShardPolicy {
  enum class Mode : std::uint8_t {
    kAuto = 0,   ///< shard when the CSR exceeds the per-shard byte budget
    kOff = 1,    ///< always dense (the pre-sharding behavior)
    kFixed = 2,  ///< exactly `count` shards
  };

  /// Per-shard CSR byte budget `auto` targets: large enough that a shard
  /// sweep amortizes its madvise calls, small enough that two resident
  /// windows stay far below any sane RAM budget.
  static constexpr std::size_t kAutoShardBytes = std::size_t{64} << 20;
  /// Upper bound on a resolved shard count (madvise bookkeeping is O(S)
  /// per sweep; 1024 shards of the auto budget already covers a 64 GB CSR).
  static constexpr std::uint32_t kMaxShards = 1024;

  Mode mode = Mode::kAuto;
  /// Shard count for kFixed; ignored otherwise.
  std::uint32_t count = 0;

  [[nodiscard]] bool enabled() const noexcept { return mode != Mode::kOff; }
};

/// Parses a --sharded flag value: "auto", "off", or a shard count >= 1.
/// Empty parses as auto (the default); anything else is nullopt.
[[nodiscard]] std::optional<ShardPolicy> parse_shard_policy(std::string_view name) noexcept;

/// Canonical flag spelling ("auto", "off", or the count digits).
[[nodiscard]] std::string shard_policy_name(const ShardPolicy& policy);

/// Shard count a policy resolves to for a CSR of `csr_bytes` over `n`
/// rows. 1 means "run the dense path" (off, auto under the byte budget,
/// or an explicit --sharded 1 — all bit-identical by contract).
/// `resident_copies` is how many shard-sized windows the engine keeps
/// live at once: 2 for the classic advise-ahead sweep (current + next),
/// 3 when a decoded-scratch window rides along (compressed adjacency
/// under the double-buffered pipeline). `auto` sizes shards so that
/// resident_copies windows together stay within the same memory
/// envelope the 2-copy sweep used (2 * kAutoShardBytes).
[[nodiscard]] std::uint32_t resolve_shard_count(const ShardPolicy& policy,
                                                std::size_t csr_bytes, NodeId n,
                                                std::uint32_t resident_copies = 2) noexcept;

/// Word the resilience layer folds into a checkpoint's context so that a
/// snapshot written under a different shard geometry classifies stale.
/// Sharded results are bit-identical to dense by contract, so this is
/// belt-and-braces versioning: 0 for a resolved count <= 1 (callers skip
/// folding a zero word, keeping dense checkpoints compatible with
/// pre-sharding snapshots), otherwise a tagged hash of the count.
[[nodiscard]] std::uint64_t shard_context_word(std::uint32_t resolved_shards) noexcept;

/// A concrete partition of rows [0, n) into contiguous shards.
struct ShardPlan {
  /// num_shards()+1 ascending row bounds; bounds.front() == 0,
  /// bounds.back() == n. Individual shards may be empty on degenerate
  /// inputs (more shards than rows).
  std::vector<NodeId> bounds;

  [[nodiscard]] std::uint32_t num_shards() const noexcept {
    return bounds.empty() ? 0 : static_cast<std::uint32_t>(bounds.size() - 1);
  }
  [[nodiscard]] NodeId begin(std::uint32_t s) const noexcept { return bounds[s]; }
  [[nodiscard]] NodeId end(std::uint32_t s) const noexcept { return bounds[s + 1]; }
  [[nodiscard]] NodeId dim() const noexcept { return bounds.empty() ? 0 : bounds.back(); }

  /// The trivial one-shard plan (the dense path's geometry).
  [[nodiscard]] static ShardPlan single(NodeId n);

  /// Splits rows so every shard owns a near-equal share of the half-edges
  /// (the sweep work and the gather bytes), found by binary search on the
  /// CSR offsets. Deterministic in (offsets, shards).
  [[nodiscard]] static ShardPlan balanced(std::span<const EdgeIndex> offsets,
                                          std::uint32_t shards);
};

/// Half-edges (u, v) whose endpoints live in different shards of `plan` —
/// the state that conceptually crosses shard boundaries each sweep (the
/// gather of v's prescaled lane block while sweeping u's shard). One
/// sequential CSR pass; feeds the markov.shard.boundary_* metrics.
[[nodiscard]] EdgeIndex count_boundary_half_edges(const Graph& g, const ShardPlan& plan);

}  // namespace socmix::graph
