// ADJC: the compressed-adjacency section of the `.smxg` container.
//
// Neighbor lists are sorted ascending (a Graph invariant), so each row is
// stored as its first id raw followed by strictly-positive gaps, and the
// resulting value stream is stream-vbyte coded: 2-bit length codes packed
// four-per-control-byte, then the 1..4 little-endian data bytes per value.
// Values are grouped by fixed row blocks (kGroupRows) so a shard window
// can be decoded without touching the rest of the file; a trailing group
// index makes any window locatable in O(1).
//
// Payload layout (all inside one CRC-checked section):
//
//   [ 16 B head ]       u32 group_rows, u32 reserved, u64 num_values
//   [ group streams ]   group k: ceil(v_k/4) ctrl bytes, then data bytes
//   [ >= 16 B slack ]   zero padding; lets a SIMD decoder issue full
//                       16-byte loads at the tail of any group
//   [ group index ]     (num_groups + 1) x u64 payload-relative stream
//                       offsets, 8-aligned; entry[num_groups] = streams end
//
// The index sits at the *end* so the writer can stream groups through an
// incremental CRC without buffering the whole payload. Value counts per
// group are not stored: they are re-derived from the OFFS section, which
// keeps ADJC pure compression — no structural authority. Decoding
// reconstructs the exact neighbor ids (integers, no rounding), so the
// scratch CSR handed to the kernels is bit-identical to an uncompressed
// ADJ4 payload; see DESIGN.md "Shard pipeline & compression".
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace socmix::graph::sharded::adjc {

/// Rows per compression group. 256 rows keeps the per-group index tiny
/// (16 B/group of overhead on million-node graphs) while a group of
/// median-degree rows still decodes from a few KB — far below any shard
/// window, so windows never over-decode meaningfully.
inline constexpr std::uint32_t kGroupRows = 256;
inline constexpr std::size_t kHeadBytes = 16;
/// Zero bytes after the last group stream, inside the CRC'd payload, so a
/// vectorized decoder may read a full 16-byte lane at any data position.
inline constexpr std::size_t kSlackBytes = 16;

[[nodiscard]] constexpr std::uint64_t num_groups(std::uint64_t num_nodes,
                                                 std::uint32_t group_rows) noexcept {
  return group_rows == 0 ? 0 : (num_nodes + group_rows - 1) / group_rows;
}

/// Encodes rows [row_begin, row_end) of a CSR as one group stream (ctrl
/// bytes then data bytes), appending to `out`. Returns bytes appended.
std::size_t encode_group(std::span<const EdgeIndex> offsets, const NodeId* neighbors,
                         NodeId row_begin, NodeId row_end,
                         std::vector<std::uint8_t>& out);

/// Parsed, bounds-validated view over a mapped ADJC payload.
struct AdjcView {
  const std::uint8_t* base = nullptr;  ///< payload start (section base)
  std::uint64_t bytes = 0;             ///< section payload size
  std::uint32_t group_rows = 0;
  std::uint64_t num_values = 0;
  std::uint64_t num_groups = 0;
  /// Payload-relative byte offsets of each group stream; num_groups + 1
  /// entries, the last marking the end of the final stream.
  const std::uint64_t* group_offsets = nullptr;

  [[nodiscard]] bool present() const noexcept { return base != nullptr; }
  [[nodiscard]] std::uint64_t group_of_row(NodeId row) const noexcept {
    return row / group_rows;
  }
  /// Payload-relative byte span of the group streams covering rows
  /// [begin, end) — the compressed analogue of a CSR row window.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> byte_window(
      NodeId begin, NodeId end) const noexcept;
};

/// Validates an ADJC payload's head, geometry, and group index against the
/// node/half-edge counts the header committed to. Fills `out` and returns
/// an empty string on success; otherwise returns the defect (the loader
/// turns it into a fail-closed rejection).
[[nodiscard]] std::string parse_adjc(const std::uint8_t* payload, std::uint64_t bytes,
                                     std::uint64_t num_nodes,
                                     std::uint64_t num_values, AdjcView& out);

}  // namespace socmix::graph::sharded::adjc
