#include "graph/sharded/format.hpp"

#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "util/checksum.hpp"

namespace socmix::graph::sharded {

namespace {

void store_u32(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
}

void store_u64(std::byte* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
}

[[nodiscard]] constexpr std::uint64_t align_up(std::uint64_t v) {
  return (v + kPayloadAlign - 1) & ~std::uint64_t{kPayloadAlign - 1};
}

template <class T>
[[nodiscard]] std::span<const std::byte> bytes_of(std::span<const T> data) {
  return {reinterpret_cast<const std::byte*>(data.data()), data.size_bytes()};
}

struct SectionOut {
  std::uint32_t id = 0;
  std::span<const std::byte> payload;
  std::uint64_t offset = 0;
};

}  // namespace

void write_smxg_file(const std::string& path, const Graph& g, const ShardPlan& plan) {
  // The payload images are the in-memory arrays, so the writer requires a
  // little-endian host (every deployment target; the header's endian tag
  // protects readers either way).
  if constexpr (std::endian::native != std::endian::little) {
    throw std::runtime_error{"write_smxg_file: big-endian hosts are unsupported"};
  }
  if (plan.dim() != g.num_nodes() || plan.num_shards() == 0) {
    throw std::runtime_error{"write_smxg_file: shard plan does not cover the graph"};
  }

  // Shard bounds widened to u64 so the payload layout is NodeId-width
  // independent.
  std::vector<std::uint64_t> bounds64(plan.bounds.begin(), plan.bounds.end());

  SectionOut sections[3] = {
      {kSectionOffsets, bytes_of(g.offsets()), 0},
      {kSectionAdjacency, bytes_of(g.raw_neighbors()), 0},
      {kSectionShards, bytes_of(std::span<const std::uint64_t>{bounds64}), 0},
  };
  constexpr std::uint32_t kNumSections = 3;

  std::uint64_t cursor = align_up(kHeaderBytes + kNumSections * kSectionEntryBytes);
  for (SectionOut& s : sections) {
    s.offset = cursor;
    cursor = align_up(cursor + s.payload.size_bytes());
  }
  const std::uint64_t file_bytes = cursor;

  std::vector<std::byte> head(static_cast<std::size_t>(
      kHeaderBytes + kNumSections * kSectionEntryBytes), std::byte{0});
  store_u32(head.data() + 0, kMagic);
  store_u32(head.data() + 4, kEndianTag);
  store_u32(head.data() + 8, kVersion);
  store_u32(head.data() + 12, kNumSections);
  store_u64(head.data() + 16, g.num_nodes());
  store_u64(head.data() + 24, g.num_half_edges());
  store_u32(head.data() + 32, plan.num_shards());
  store_u64(head.data() + 40, file_bytes);
  store_u64(head.data() + 48, structural_fingerprint(g));
  store_u32(head.data() + 60,
            util::crc32(std::span<const std::byte>{head.data(), 60}));
  for (std::uint32_t i = 0; i < kNumSections; ++i) {
    std::byte* entry = head.data() + kHeaderBytes + i * kSectionEntryBytes;
    store_u32(entry + 0, sections[i].id);
    store_u32(entry + 4, util::crc32(sections[i].payload));
    store_u64(entry + 8, sections[i].offset);
    store_u64(entry + 16, sections[i].payload.size_bytes());
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) throw std::runtime_error{"write_smxg_file: cannot open " + tmp};
    out.write(reinterpret_cast<const char*>(head.data()),
              static_cast<std::streamsize>(head.size()));
    std::uint64_t written = head.size();
    const char zeros[kPayloadAlign] = {};
    for (const SectionOut& s : sections) {
      out.write(zeros, static_cast<std::streamsize>(s.offset - written));
      out.write(reinterpret_cast<const char*>(s.payload.data()),
                static_cast<std::streamsize>(s.payload.size_bytes()));
      written = s.offset + s.payload.size_bytes();
    }
    out.write(zeros, static_cast<std::streamsize>(file_bytes - written));
    if (!out) throw std::runtime_error{"write_smxg_file: write failed for " + tmp};
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error{"write_smxg_file: cannot rename into " + path};
  }
}

}  // namespace socmix::graph::sharded
