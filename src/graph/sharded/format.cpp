#include "graph/sharded/format.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "graph/sharded/adjc.hpp"
#include "util/checksum.hpp"

namespace socmix::graph::sharded {

namespace {

void store_u32(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
}

void store_u64(std::byte* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
}

[[nodiscard]] constexpr std::uint64_t align_up(std::uint64_t v) {
  return (v + kPayloadAlign - 1) & ~std::uint64_t{kPayloadAlign - 1};
}

template <class T>
[[nodiscard]] std::span<const std::byte> bytes_of(std::span<const T> data) {
  return {reinterpret_cast<const std::byte*>(data.data()), data.size_bytes()};
}

struct SectionMeta {
  std::uint32_t id = 0;
  std::uint32_t crc = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
};

}  // namespace

void write_smxg_file(const std::string& path, const Graph& g, const ShardPlan& plan) {
  write_smxg_file(path, g, plan, WriteOptions{});
}

void write_smxg_file(const std::string& path, const Graph& g, const ShardPlan& plan,
                     const WriteOptions& options) {
  // The payload images are the in-memory arrays, so the writer requires a
  // little-endian host (every deployment target; the header's endian tag
  // protects readers either way).
  if constexpr (std::endian::native != std::endian::little) {
    throw std::runtime_error{"write_smxg_file: big-endian hosts are unsupported"};
  }
  if (plan.dim() != g.num_nodes() || plan.num_shards() == 0) {
    throw std::runtime_error{"write_smxg_file: shard plan does not cover the graph"};
  }
  if (g.raw_neighbors().data() == nullptr) {
    throw std::runtime_error{
        "write_smxg_file: cannot repack a compressed (headless) view"};
  }

  // Shard bounds widened to u64 so the payload layout is NodeId-width
  // independent.
  std::vector<std::uint64_t> bounds64(plan.bounds.begin(), plan.bounds.end());

  constexpr std::uint32_t kNumSections = 3;
  const std::uint64_t head_bytes = kHeaderBytes + kNumSections * kSectionEntryBytes;
  SectionMeta metas[kNumSections];

  const std::string tmp = path + ".tmp";
  std::uint64_t file_bytes = 0;
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) throw std::runtime_error{"write_smxg_file: cannot open " + tmp};
    std::uint64_t cursor = 0;
    const auto put = [&](const void* p, std::size_t n) {
      out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
      cursor += n;
    };
    const auto pad_to = [&](std::uint64_t target) {
      static constexpr char zeros[kPayloadAlign] = {};
      while (cursor < target) {
        put(zeros, static_cast<std::size_t>(
                       std::min<std::uint64_t>(sizeof zeros, target - cursor)));
      }
    };
    // The header + section table slot is zero-filled now and patched once
    // every payload size and CRC is known; payloads stream straight to disk.
    pad_to(head_bytes);

    const auto plain_section = [&](std::uint32_t id, std::span<const std::byte> payload) {
      SectionMeta m;
      m.id = id;
      pad_to(align_up(cursor));
      m.offset = cursor;
      m.bytes = payload.size_bytes();
      m.crc = util::crc32(payload);
      put(payload.data(), payload.size_bytes());
      return m;
    };

    metas[0] = plain_section(kSectionOffsets, bytes_of(g.offsets()));
    if (!options.compress) {
      metas[1] = plain_section(kSectionAdjacency, bytes_of(g.raw_neighbors()));
    } else {
      // ADJC: head, group streams, slack, then the group index — written in
      // that order through one incremental CRC, buffering one group at a
      // time (layout contract in adjc.hpp).
      SectionMeta m;
      m.id = kSectionAdjacencyCompressed;
      pad_to(align_up(cursor));
      m.offset = cursor;
      std::uint32_t crc = util::kCrc32Init;
      const auto put_crc = [&](const void* p, std::size_t n) {
        crc = util::crc32_update(crc, {static_cast<const std::byte*>(p), n});
        put(p, n);
      };
      std::byte adjc_head[adjc::kHeadBytes] = {};
      store_u32(adjc_head + 0, adjc::kGroupRows);
      store_u64(adjc_head + 8, g.num_half_edges());
      put_crc(adjc_head, sizeof adjc_head);
      const std::uint64_t n = g.num_nodes();
      const std::uint64_t groups = adjc::num_groups(n, adjc::kGroupRows);
      std::vector<std::uint64_t> index;
      index.reserve(static_cast<std::size_t>(groups) + 1);
      std::uint64_t rel = adjc::kHeadBytes;
      std::vector<std::uint8_t> buf;
      for (std::uint64_t k = 0; k < groups; ++k) {
        index.push_back(rel);
        const NodeId lo = static_cast<NodeId>(k * adjc::kGroupRows);
        const NodeId hi = static_cast<NodeId>(
            std::min<std::uint64_t>(n, (k + 1) * adjc::kGroupRows));
        buf.clear();
        rel += adjc::encode_group(g.offsets(), g.raw_neighbors().data(), lo, hi, buf);
        put_crc(buf.data(), buf.size());
      }
      index.push_back(rel);
      const std::uint64_t index_rel = (rel + adjc::kSlackBytes + 7) & ~std::uint64_t{7};
      const std::vector<std::uint8_t> slack(static_cast<std::size_t>(index_rel - rel), 0);
      put_crc(slack.data(), slack.size());
      put_crc(index.data(), index.size() * sizeof(std::uint64_t));
      m.bytes = index_rel + index.size() * sizeof(std::uint64_t);
      m.crc = util::crc32_final(crc);
      metas[1] = m;
    }
    metas[2] =
        plain_section(kSectionShards, bytes_of(std::span<const std::uint64_t>{bounds64}));

    pad_to(align_up(cursor));
    file_bytes = cursor;

    std::vector<std::byte> head(static_cast<std::size_t>(head_bytes), std::byte{0});
    store_u32(head.data() + 0, kMagic);
    store_u32(head.data() + 4, kEndianTag);
    store_u32(head.data() + 8, options.compress ? kVersionCompressed : kVersion);
    store_u32(head.data() + 12, kNumSections);
    store_u64(head.data() + 16, g.num_nodes());
    store_u64(head.data() + 24, g.num_half_edges());
    store_u32(head.data() + 32, plan.num_shards());
    store_u64(head.data() + 40, file_bytes);
    store_u64(head.data() + 48, structural_fingerprint(g));
    store_u32(head.data() + 60,
              util::crc32(std::span<const std::byte>{head.data(), 60}));
    for (std::uint32_t i = 0; i < kNumSections; ++i) {
      std::byte* entry = head.data() + kHeaderBytes + i * kSectionEntryBytes;
      store_u32(entry + 0, metas[i].id);
      store_u32(entry + 4, metas[i].crc);
      store_u64(entry + 8, metas[i].offset);
      store_u64(entry + 16, metas[i].bytes);
    }
    out.seekp(0);
    out.write(reinterpret_cast<const char*>(head.data()),
              static_cast<std::streamsize>(head.size()));
    if (!out) throw std::runtime_error{"write_smxg_file: write failed for " + tmp};
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error{"write_smxg_file: cannot rename into " + path};
  }
}

}  // namespace socmix::graph::sharded
