#include "graph/sharded/adjc.hpp"

#include <cstring>

namespace socmix::graph::sharded::adjc {

namespace {

[[nodiscard]] constexpr unsigned byte_len(std::uint32_t v) noexcept {
  return 1u + (v > 0xffu) + (v > 0xffffu) + (v > 0xffffffu);
}

[[nodiscard]] std::uint64_t load_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;  // validated little-endian container; LE hosts only (format.cpp)
}

[[nodiscard]] std::uint32_t load_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

std::size_t encode_group(std::span<const EdgeIndex> offsets, const NodeId* neighbors,
                         NodeId row_begin, NodeId row_end,
                         std::vector<std::uint8_t>& out) {
  const std::uint64_t values = offsets[row_end] - offsets[row_begin];
  const std::size_t start = out.size();
  const std::size_t ctrl_bytes = static_cast<std::size_t>((values + 3) / 4);
  out.resize(start + ctrl_bytes, 0);
  std::uint64_t i = 0;  // value index within the group
  for (NodeId r = row_begin; r < row_end; ++r) {
    NodeId prev = 0;
    for (EdgeIndex e = offsets[r]; e < offsets[r + 1]; ++e, ++i) {
      // First id of the row raw, the rest as strictly-positive gaps: rows
      // are sorted unique, so every value fits the 1..4-byte ladder.
      const std::uint32_t v = e == offsets[r] ? neighbors[e] : neighbors[e] - prev;
      prev = neighbors[e];
      const unsigned len = byte_len(v);
      out[start + static_cast<std::size_t>(i >> 2)] |=
          static_cast<std::uint8_t>((len - 1) << ((i & 3) * 2));
      for (unsigned b = 0; b < len; ++b) {
        out.push_back(static_cast<std::uint8_t>((v >> (8 * b)) & 0xff));
      }
    }
  }
  return out.size() - start;
}

std::pair<std::uint64_t, std::uint64_t> AdjcView::byte_window(
    NodeId begin, NodeId end) const noexcept {
  if (begin >= end || num_groups == 0) return {0, 0};
  const std::uint64_t g_lo = group_of_row(begin);
  const std::uint64_t g_hi = group_of_row(end - 1) + 1;
  return {group_offsets[g_lo], group_offsets[g_hi]};
}

std::string parse_adjc(const std::uint8_t* payload, std::uint64_t bytes,
                       std::uint64_t num_nodes, std::uint64_t num_values,
                       AdjcView& out) {
  if (bytes < kHeadBytes + kSlackBytes) return "ADJC payload too small";
  const std::uint32_t group_rows = load_u32(payload);
  if (group_rows == 0) return "ADJC group_rows is zero";
  if (load_u64(payload + 8) != num_values) {
    return "ADJC value count disagrees with header";
  }
  const std::uint64_t groups = num_groups(num_nodes, group_rows);
  const std::uint64_t index_bytes = (groups + 1) * 8;
  if (bytes < kHeadBytes + kSlackBytes + index_bytes) {
    return "ADJC payload shorter than its group index";
  }
  const std::uint64_t index_off = bytes - index_bytes;
  if (index_off % 8 != 0) return "ADJC group index misaligned";
  const auto* index = reinterpret_cast<const std::uint64_t*>(payload + index_off);
  // The index must be monotone and confined to the stream region: a rotted
  // (CRC-evading) or hand-built index must never send the decoder outside
  // the mapped payload.
  std::uint64_t prev = kHeadBytes;
  if (index[0] != kHeadBytes) return "ADJC group index does not start at the head";
  for (std::uint64_t k = 1; k <= groups; ++k) {
    if (index[k] < prev) return "ADJC group index not monotone";
    prev = index[k];
  }
  if (prev + kSlackBytes > index_off) return "ADJC group streams overrun the index";
  out.base = payload;
  out.bytes = bytes;
  out.group_rows = group_rows;
  out.num_values = num_values;
  out.num_groups = groups;
  out.group_offsets = index;
  return {};
}

}  // namespace socmix::graph::sharded::adjc
