#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/rng.hpp"

namespace socmix::graph {

Graph Graph::from_edges(EdgeList edges) {
  edges.remove_self_loops();
  edges.symmetrize_and_dedup();

  const NodeId n = edges.num_nodes();
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges.edges()) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<NodeId> neighbors(offsets.back());
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges.edges()) {
    neighbors[cursor[e.u]++] = e.v;
    neighbors[cursor[e.v]++] = e.u;
  }
  for (NodeId v = 0; v < n; ++v) {
    std::sort(neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }
  return Graph{std::move(offsets), std::move(neighbors)};
}

Graph Graph::from_csr(std::vector<EdgeIndex> offsets, std::vector<NodeId> neighbors) {
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != neighbors.size()) {
    throw std::invalid_argument{"Graph::from_csr: malformed offsets"};
  }
  return Graph{std::move(offsets), std::move(neighbors)};
}

Graph Graph::borrowed(std::span<const EdgeIndex> offsets, std::span<const NodeId> neighbors) {
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != neighbors.size()) {
    throw std::invalid_argument{"Graph::borrowed: malformed offsets"};
  }
  Graph g;
  g.offsets_ = offsets.data();
  g.offsets_size_ = offsets.size();
  g.neighbors_ = neighbors.data();
  g.neighbors_size_ = neighbors.size();
  return g;
}

Graph Graph::borrowed_headless(std::span<const EdgeIndex> offsets,
                               EdgeIndex num_half_edges) {
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != num_half_edges) {
    throw std::invalid_argument{"Graph::borrowed_headless: malformed offsets"};
  }
  Graph g;
  g.offsets_ = offsets.data();
  g.offsets_size_ = offsets.size();
  g.neighbors_ = nullptr;
  g.neighbors_size_ = num_half_edges;
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  const auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

NodeId Graph::index_of_neighbor(NodeId u, NodeId v) const noexcept {
  const auto adj = neighbors(u);
  const auto it = std::lower_bound(adj.begin(), adj.end(), v);
  if (it == adj.end() || *it != v) return kInvalidNode;
  return static_cast<NodeId>(it - adj.begin());
}

NodeId Graph::min_degree() const noexcept {
  const NodeId n = num_nodes();
  if (n == 0) return 0;
  NodeId best = degree(0);
  for (NodeId v = 1; v < n; ++v) best = std::min(best, degree(v));
  return best;
}

NodeId Graph::max_degree() const noexcept {
  const NodeId n = num_nodes();
  NodeId best = 0;
  for (NodeId v = 0; v < n; ++v) best = std::max(best, degree(v));
  return best;
}

bool Graph::has_no_isolated_nodes() const noexcept {
  const NodeId n = num_nodes();
  for (NodeId v = 0; v < n; ++v)
    if (degree(v) == 0) return false;
  return true;
}

std::uint64_t structural_fingerprint(const Graph& g) noexcept {
  constexpr std::size_t kMaxSamples = 1u << 16;
  std::uint64_t h = util::hash_combine(g.num_nodes(), g.num_half_edges());
  const auto sample = [&h](const auto& array) {
    const std::size_t size = array.size();
    const std::size_t stride = size <= kMaxSamples ? 1 : size / kMaxSamples;
    for (std::size_t i = 0; i < size; i += stride) {
      h = util::hash_combine(h, static_cast<std::uint64_t>(array[i]));
    }
    if (size > 0) h = util::hash_combine(h, static_cast<std::uint64_t>(array[size - 1]));
  };
  sample(g.offsets());
  sample(g.raw_neighbors());
  return h;
}

}  // namespace socmix::graph
