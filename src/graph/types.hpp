// Fundamental identifier types shared by every graph-facing module.
#pragma once

#include <cstdint>

namespace socmix::graph {

/// Vertex identifier. 32 bits covers the paper's largest graphs (~1.1M
/// nodes) with a 4000x margin while halving CSR memory vs 64-bit ids.
using NodeId = std::uint32_t;

/// Index into a CSR adjacency array (counts directed half-edges, so it can
/// exceed 2^32 for very dense graphs; the paper's max is ~55M half-edges).
using EdgeIndex = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

}  // namespace socmix::graph
