// Induced-subgraph extraction with dense relabeling.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace socmix::graph {

/// Result of extracting a vertex subset as a standalone graph.
struct ExtractedSubgraph {
  Graph graph;
  /// original_id[new_id] = vertex id in the source graph.
  std::vector<NodeId> original_id;
};

/// Builds the subgraph induced by `members` (ids must be unique; any order).
/// Vertices are relabeled to [0, members.size()) in the given order;
/// ExtractedSubgraph::original_id records the inverse map.
[[nodiscard]] ExtractedSubgraph induced_subgraph(const Graph& g,
                                                 std::span<const NodeId> members);

}  // namespace socmix::graph
