#include "graph/sampling.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

namespace socmix::graph {

namespace {

/// Collects up to target_nodes vertices by BFS starting at `start`; appends
/// into `members`, using `visited` as the cross-restart visited set.
void bfs_collect(const Graph& g, NodeId start, NodeId target_nodes,
                 std::vector<NodeId>& members, std::vector<char>& visited) {
  if (visited[start] != 0) return;
  std::deque<NodeId> queue;
  queue.push_back(start);
  visited[start] = 1;
  while (!queue.empty() && members.size() < target_nodes) {
    const NodeId v = queue.front();
    queue.pop_front();
    members.push_back(v);
    for (const NodeId w : g.neighbors(v)) {
      if (visited[w] == 0) {
        visited[w] = 1;
        queue.push_back(w);
      }
    }
  }
}

[[nodiscard]] NodeId random_unvisited(const Graph& g, const std::vector<char>& visited,
                                      util::Rng& rng) {
  const NodeId n = g.num_nodes();
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto v = static_cast<NodeId>(rng.below(n));
    if (visited[v] == 0) return v;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (visited[v] == 0) return v;
  }
  return kInvalidNode;
}

}  // namespace

ExtractedSubgraph bfs_sample(const Graph& g, NodeId target_nodes, util::Rng& rng) {
  const NodeId n = g.num_nodes();
  target_nodes = std::min(target_nodes, n);
  std::vector<NodeId> members;
  members.reserve(target_nodes);
  std::vector<char> visited(n, 0);
  while (members.size() < target_nodes) {
    const NodeId start = random_unvisited(g, visited, rng);
    if (start == kInvalidNode) break;
    bfs_collect(g, start, target_nodes, members, visited);
  }
  return induced_subgraph(g, members);
}

ExtractedSubgraph bfs_sample_from(const Graph& g, NodeId start, NodeId target_nodes) {
  const NodeId n = g.num_nodes();
  target_nodes = std::min(target_nodes, n);
  std::vector<NodeId> members;
  members.reserve(target_nodes);
  std::vector<char> visited(n, 0);
  bfs_collect(g, start, target_nodes, members, visited);
  return induced_subgraph(g, members);
}

ExtractedSubgraph uniform_node_sample(const Graph& g, NodeId target_nodes, util::Rng& rng) {
  const NodeId n = g.num_nodes();
  target_nodes = std::min(target_nodes, n);
  // Partial Fisher-Yates over the id range picks target_nodes distinct ids.
  std::vector<NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), NodeId{0});
  for (NodeId i = 0; i < target_nodes; ++i) {
    const auto j = i + static_cast<NodeId>(rng.below(n - i));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(target_nodes);
  return induced_subgraph(g, ids);
}

ExtractedSubgraph random_walk_sample(const Graph& g, NodeId target_nodes, util::Rng& rng) {
  const NodeId n = g.num_nodes();
  target_nodes = std::min(target_nodes, n);
  std::vector<NodeId> members;
  members.reserve(target_nodes);
  std::vector<char> visited(n, 0);

  NodeId current = random_unvisited(g, visited, rng);
  std::uint64_t steps_since_progress = 0;
  while (members.size() < target_nodes && current != kInvalidNode) {
    if (visited[current] == 0) {
      visited[current] = 1;
      members.push_back(current);
      steps_since_progress = 0;
    }
    const NodeId deg = g.degree(current);
    // Restart when stuck on an isolated vertex or wandering a saturated
    // region (the paper's datasets are connected; this guards corner cases).
    if (deg == 0 || ++steps_since_progress > 50 * static_cast<std::uint64_t>(n)) {
      current = random_unvisited(g, visited, rng);
      steps_since_progress = 0;
      continue;
    }
    current = g.neighbor(current, static_cast<NodeId>(rng.below(deg)));
  }
  return induced_subgraph(g, members);
}

}  // namespace socmix::graph
