#include "graph/edge_list.hpp"

#include <algorithm>

namespace socmix::graph {

void EdgeList::add(NodeId u, NodeId v) {
  edges_.push_back(Edge{u, v});
  const NodeId hi = u > v ? u : v;
  if (hi >= num_nodes_) num_nodes_ = hi + 1;
}

void EdgeList::remove_self_loops() {
  std::erase_if(edges_, [](const Edge& e) { return e.u == e.v; });
}

void EdgeList::symmetrize_and_dedup() {
  for (Edge& e : edges_) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

std::size_t EdgeList::count_self_loops() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(edges_.begin(), edges_.end(), [](const Edge& e) { return e.u == e.v; }));
}

}  // namespace socmix::graph
