#include "graph/components.hpp"

#include <algorithm>
#include <queue>

#include "graph/subgraph.hpp"

namespace socmix::graph {

NodeId Components::largest() const noexcept {
  if (sizes.empty()) return kInvalidNode;
  const auto it = std::max_element(sizes.begin(), sizes.end());
  return static_cast<NodeId>(it - sizes.begin());
}

Components connected_components(const Graph& g) {
  const NodeId n = g.num_nodes();
  Components out;
  out.component.assign(n, kInvalidNode);

  std::vector<NodeId> frontier;
  for (NodeId start = 0; start < n; ++start) {
    if (out.component[start] != kInvalidNode) continue;
    const auto label = static_cast<NodeId>(out.sizes.size());
    NodeId count = 0;
    frontier.clear();
    frontier.push_back(start);
    out.component[start] = label;
    while (!frontier.empty()) {
      const NodeId v = frontier.back();
      frontier.pop_back();
      ++count;
      for (const NodeId w : g.neighbors(v)) {
        if (out.component[w] == kInvalidNode) {
          out.component[w] = label;
          frontier.push_back(w);
        }
      }
    }
    out.sizes.push_back(count);
  }
  return out;
}

ExtractedSubgraph largest_component(const Graph& g) {
  const Components comps = connected_components(g);
  const NodeId target = comps.largest();
  std::vector<NodeId> members;
  if (target != kInvalidNode) {
    members.reserve(comps.sizes[target]);
    const NodeId n = g.num_nodes();
    for (NodeId v = 0; v < n; ++v) {
      if (comps.component[v] == target) members.push_back(v);
    }
  }
  return induced_subgraph(g, members);
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return false;
  const Components comps = connected_components(g);
  return comps.count() == 1;
}

}  // namespace socmix::graph
