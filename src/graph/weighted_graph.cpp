#include "graph/weighted_graph.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace socmix::graph {

WeightedGraph WeightedGraph::from_edges(std::vector<WeightedEdge> edges,
                                        NodeId num_nodes) {
  // Canonicalize and merge duplicates, summing weights.
  std::map<std::pair<NodeId, NodeId>, double> merged;
  NodeId n = num_nodes;
  for (const WeightedEdge& e : edges) {
    if (e.u == e.v) continue;
    const auto key = e.u < e.v ? std::make_pair(e.u, e.v) : std::make_pair(e.v, e.u);
    merged[key] += e.weight;
    n = std::max(n, static_cast<NodeId>(std::max(e.u, e.v) + 1));
  }
  for (const auto& [key, weight] : merged) {
    if (weight <= 0.0) {
      throw std::invalid_argument{"WeightedGraph: non-positive merged edge weight"};
    }
  }

  WeightedGraph out;
  out.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [key, weight] : merged) {
    ++out.offsets_[key.first + 1];
    ++out.offsets_[key.second + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) out.offsets_[i] += out.offsets_[i - 1];

  out.neighbors_.resize(out.offsets_.back());
  out.weights_.resize(out.offsets_.back());
  std::vector<EdgeIndex> cursor(out.offsets_.begin(), out.offsets_.end() - 1);
  // std::map iterates keys sorted, so each vertex's list comes out sorted.
  for (const auto& [key, weight] : merged) {
    const auto [u, v] = key;
    out.neighbors_[cursor[u]] = v;
    out.weights_[cursor[u]++] = weight;
    out.neighbors_[cursor[v]] = u;
    out.weights_[cursor[v]++] = weight;
  }

  out.strength_.assign(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    for (const double w : out.weights(v)) out.strength_[v] += w;
    out.total_strength_ += out.strength_[v];
  }
  return out;
}

WeightedGraph WeightedGraph::from_graph(const Graph& g) {
  std::vector<WeightedEdge> edges;
  edges.reserve(g.num_edges());
  const NodeId n = g.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) edges.push_back({u, v, 1.0});
    }
  }
  return from_edges(std::move(edges), n);
}

Graph WeightedGraph::skeleton() const {
  return Graph::from_csr({offsets_.begin(), offsets_.end()},
                         {neighbors_.begin(), neighbors_.end()});
}

}  // namespace socmix::graph
