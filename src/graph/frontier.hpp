// Adaptive frontier tracking for sparse-support walk evolution.
//
// A point mass evolved for t steps is supported only on the source's
// t-hop ball, yet the dense evolution kernels sweep all n CSR rows from
// step 0. FrontierSet maintains a monotone overapproximation of that
// support — the neighborhood closure S_{t+1} = S_t ∪ N(S_t) — and
// exposes it as sorted half-open row ranges, so the evolution engines can
// sweep only the rows that can become nonzero and skip the rest (whose
// dense result is exactly +0.0; see DESIGN.md "Frontier phase" for the
// bit-parity argument). Under the locality orderings of reorder.hpp
// (BFS/RCM) a t-hop ball occupies near-contiguous label intervals, so the
// range list stays short and the sparse sweep streams almost like the
// dense one — the two layers compose.
//
// FrontierPolicy is the user-facing knob (--frontier auto|off|<frac>):
// while the closure covers fewer than `row_fraction()` of the rows the
// engines run the frontier kernels; at or above it they switch
// permanently (per seeding) to the dense path, so long dense-dominated
// walks pay only the few early sparse steps they actually win on.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace socmix::graph {

/// Half-open interval of consecutive CSR rows [begin, end).
struct RowRange {
  NodeId begin = 0;
  NodeId end = 0;
};

/// When (and whether) the evolution engines run the frontier phase.
struct FrontierPolicy {
  enum class Mode : std::uint8_t {
    kAuto = 0,       ///< frontier on, switch at kAutoRowFraction coverage
    kOff = 1,        ///< always dense (the pre-frontier behavior)
    kThreshold = 2,  ///< frontier on, switch at `threshold` coverage
  };

  /// Row-coverage fraction at which `auto` abandons the sparse phase. At
  /// half coverage the skipped-row saving no longer beats the sparse
  /// bookkeeping on any measured workload (bench_results/micro_frontier.csv).
  static constexpr double kAutoRowFraction = 0.5;

  Mode mode = Mode::kAuto;
  /// Switch threshold in (0, 1]; meaningful only for kThreshold.
  double threshold = kAutoRowFraction;

  [[nodiscard]] bool enabled() const noexcept { return mode != Mode::kOff; }
  /// The coverage fraction the engine switches to dense at (kAutoRowFraction
  /// under kAuto; unspecified for kOff).
  [[nodiscard]] double row_fraction() const noexcept {
    return mode == Mode::kThreshold ? threshold : kAutoRowFraction;
  }
};

/// Parses a --frontier flag value: "auto", "off", or a row fraction in
/// (0, 1] (e.g. "0.25"). Empty parses as auto (the default); anything
/// else is nullopt.
[[nodiscard]] std::optional<FrontierPolicy> parse_frontier_policy(
    std::string_view name) noexcept;

/// Canonical flag spelling ("auto", "off", or the threshold digits).
[[nodiscard]] std::string frontier_policy_name(const FrontierPolicy& policy);

/// Word the resilience layer folds into a checkpoint's context so that a
/// snapshot written under a different frontier mode classifies stale.
/// Frontier results are bit-identical to dense by contract, so this is
/// belt-and-braces versioning, not a correctness gate: 0 for off,
/// otherwise the bits of the effective switch fraction (making `auto` and
/// an explicit "0.5" deliberately equivalent).
[[nodiscard]] std::uint64_t frontier_context_word(const FrontierPolicy& policy) noexcept;

/// Monotone closure of a walk's support, stored as a bitset plus exact
/// sorted row ranges (rebuilt by word-scan after every expansion).
///
/// The ranges are exact — no gap coalescing — so a kernel iterating them
/// touches precisely the rows in the set; "near-contiguous" comes from
/// the graph ordering, not from approximation. Expansion is incremental:
/// S_{t+1} = S_t ∪ N(S_t) only needs N(F_t) where F_t is the rows first
/// added at step t, because N(S_{t-1}) ⊆ S_t already.
class FrontierSet {
 public:
  /// An empty set over zero rows (assign a sized one before use).
  FrontierSet() = default;
  /// An empty set over rows [0, n).
  explicit FrontierSet(NodeId n);

  /// Resets to exactly `seeds` (duplicates allowed).
  void reset(std::span<const NodeId> seeds);

  /// S <- S ∪ N(S) over `g` (must have num_nodes() == dim()).
  void expand(const Graph& g);

  /// Sorted disjoint half-open ranges covering exactly the member rows.
  [[nodiscard]] std::span<const RowRange> ranges() const noexcept { return ranges_; }

  [[nodiscard]] bool contains(NodeId v) const noexcept {
    return (bits_[v >> 6] >> (v & 63)) & 1u;
  }
  /// Number of member rows.
  [[nodiscard]] NodeId covered_rows() const noexcept { return covered_; }
  /// Half-edges inside the member rows of `g` (the sparse sweep's gather
  /// work); O(ranges) via the CSR offsets.
  [[nodiscard]] EdgeIndex covered_half_edges(const Graph& g) const noexcept;
  [[nodiscard]] NodeId dim() const noexcept { return n_; }

 private:
  void rebuild_ranges();

  std::vector<std::uint64_t> bits_;
  std::vector<RowRange> ranges_;
  /// Rows added by the latest reset/expand — the only rows the next
  /// expand needs to traverse.
  std::vector<NodeId> fresh_;
  std::vector<NodeId> fresh_scratch_;
  NodeId n_ = 0;
  NodeId covered_ = 0;
};

}  // namespace socmix::graph
