#include "graph/stats.hpp"

#include <algorithm>
#include <deque>

namespace socmix::graph {

DegreeStats degree_stats(const Graph& g) {
  DegreeStats out;
  const NodeId n = g.num_nodes();
  if (n == 0) return out;

  std::vector<NodeId> degrees(n);
  for (NodeId v = 0; v < n; ++v) degrees[v] = g.degree(v);

  out.min = *std::min_element(degrees.begin(), degrees.end());
  out.max = *std::max_element(degrees.begin(), degrees.end());
  out.mean = static_cast<double>(g.num_half_edges()) / n;

  out.histogram.assign(static_cast<std::size_t>(out.max) + 1, 0);
  for (const NodeId d : degrees) ++out.histogram[d];

  std::nth_element(degrees.begin(), degrees.begin() + n / 2, degrees.end());
  out.median = degrees[n / 2];
  if (n % 2 == 0) {
    const auto lower =
        *std::max_element(degrees.begin(), degrees.begin() + n / 2);
    out.median = (out.median + lower) / 2.0;
  }
  return out;
}

double local_clustering(const Graph& g, NodeId v) {
  const auto adj = g.neighbors(v);
  const std::size_t deg = adj.size();
  if (deg < 2) return 0.0;
  std::uint64_t closed = 0;
  for (std::size_t i = 0; i < deg; ++i) {
    for (std::size_t j = i + 1; j < deg; ++j) {
      if (g.has_edge(adj[i], adj[j])) ++closed;
    }
  }
  const double wedges = 0.5 * static_cast<double>(deg) * static_cast<double>(deg - 1);
  return static_cast<double>(closed) / wedges;
}

double average_clustering(const Graph& g, NodeId sample, util::Rng& rng) {
  const NodeId n = g.num_nodes();
  if (n == 0) return 0.0;
  double sum = 0.0;
  if (sample >= n) {
    for (NodeId v = 0; v < n; ++v) sum += local_clustering(g, v);
    return sum / n;
  }
  for (NodeId i = 0; i < sample; ++i) {
    sum += local_clustering(g, static_cast<NodeId>(rng.below(n)));
  }
  return sum / sample;
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const NodeId w : g.neighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

double effective_diameter(const Graph& g, NodeId sources, double quantile, util::Rng& rng) {
  const NodeId n = g.num_nodes();
  if (n == 0 || sources == 0) return 0.0;
  std::vector<std::uint64_t> by_distance;
  std::uint64_t reachable_pairs = 0;
  for (NodeId s = 0; s < sources; ++s) {
    const auto dist = bfs_distances(g, static_cast<NodeId>(rng.below(n)));
    for (const std::uint32_t d : dist) {
      if (d == kUnreachable || d == 0) continue;
      if (d >= by_distance.size()) by_distance.resize(d + 1, 0);
      ++by_distance[d];
      ++reachable_pairs;
    }
  }
  if (reachable_pairs == 0) return 0.0;
  const auto threshold =
      static_cast<std::uint64_t>(quantile * static_cast<double>(reachable_pairs));
  std::uint64_t cumulative = 0;
  for (std::size_t d = 0; d < by_distance.size(); ++d) {
    cumulative += by_distance[d];
    if (cumulative >= threshold) return static_cast<double>(d);
  }
  return static_cast<double>(by_distance.size());
}

double degree_assortativity(const Graph& g) {
  // Pearson correlation over directed edge endpoints (each undirected edge
  // contributes both orientations, which symmetrizes the estimator).
  const NodeId n = g.num_nodes();
  double sum_x = 0.0;
  double sum_xx = 0.0;
  double sum_xy = 0.0;
  std::uint64_t count = 0;
  for (NodeId u = 0; u < n; ++u) {
    const double du = g.degree(u);
    for (const NodeId v : g.neighbors(u)) {
      const double dv = g.degree(v);
      sum_x += du;
      sum_xx += du * du;
      sum_xy += du * dv;
      ++count;
    }
  }
  if (count < 2) return 0.0;
  const double m = static_cast<double>(count);
  const double mean = sum_x / m;
  const double variance = sum_xx / m - mean * mean;
  if (variance <= 1e-15) return 0.0;  // regular graph: undefined, report 0
  const double covariance = sum_xy / m - mean * mean;
  return covariance / variance;
}

double cut_conductance(const Graph& g, std::span<const char> in_set) {
  const NodeId n = g.num_nodes();
  std::uint64_t vol_in = 0;
  std::uint64_t vol_out = 0;
  std::uint64_t cut = 0;
  for (NodeId v = 0; v < n; ++v) {
    const bool inside = in_set[v] != 0;
    (inside ? vol_in : vol_out) += g.degree(v);
    if (!inside) continue;
    for (const NodeId w : g.neighbors(v)) {
      if (in_set[w] == 0) ++cut;
    }
  }
  const std::uint64_t denom = std::min(vol_in, vol_out);
  if (denom == 0) return 1.0;
  return static_cast<double>(cut) / static_cast<double>(denom);
}

}  // namespace socmix::graph
