// Descriptive graph statistics used in dataset reports and sanity checks:
// degree distribution, clustering coefficient, distance estimates, and the
// conductance of an explicit cut (the quantity the paper links to mixing
// via the spectral gap, §3.2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace socmix::graph {

/// Summary of a degree sequence.
struct DegreeStats {
  NodeId min = 0;
  NodeId max = 0;
  double mean = 0.0;
  double median = 0.0;
  /// histogram[d] = number of vertices of degree d (up to max).
  std::vector<std::uint64_t> histogram;
};

[[nodiscard]] DegreeStats degree_stats(const Graph& g);

/// Exact local clustering coefficient of one vertex: closed triangles over
/// wedge count. Degree-0/1 vertices report 0.
[[nodiscard]] double local_clustering(const Graph& g, NodeId v);

/// Average local clustering coefficient over a uniform sample of vertices
/// (pass sample >= n to make it exact).
[[nodiscard]] double average_clustering(const Graph& g, NodeId sample, util::Rng& rng);

/// BFS distances from a source; unreachable vertices get kUnreachable.
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// Estimated effective diameter: the distance within which `quantile`
/// (e.g. 0.9) of reachable pairs fall, from `sources` random BFS trees.
[[nodiscard]] double effective_diameter(const Graph& g, NodeId sources, double quantile,
                                        util::Rng& rng);

/// Degree assortativity (Pearson correlation of endpoint degrees over
/// edges, Newman 2002). Positive for social "rich-with-rich" networks,
/// ~0 for random graphs. Returns 0 for degenerate graphs (< 2 edges or
/// constant degrees).
[[nodiscard]] double degree_assortativity(const Graph& g);

/// Conductance of the cut (S, V\S):
///   phi(S) = cut(S) / min(vol(S), vol(V\S)),
/// where vol is the sum of degrees. `in_set[v]` selects membership.
/// Returns 1.0 for degenerate cuts (empty side or zero volume).
[[nodiscard]] double cut_conductance(const Graph& g, std::span<const char> in_set);

}  // namespace socmix::graph
