// Random walks on directed graphs.
//
// The directed chain x_{t+1} = x_t P (P row-normalized over out-arcs) is
// generally neither reversible nor ergodic: dangling vertices absorb mass
// and the stationary distribution has no deg/2m closed form. We follow the
// standard PageRank remedies, kept explicit so their effect is measurable:
//   * dangling vertices redistribute their mass uniformly;
//   * an optional teleport probability gamma restarts the walk uniformly,
//     guaranteeing ergodicity (gamma = 0 is the raw chain).
// The stationary distribution is computed by power iteration, and the
// mixing machinery mirrors markov/: TVD trajectories per source and
// sampled mixing aggregation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "digraph/digraph.hpp"

namespace socmix::digraph {

/// Distribution evolution engine for the directed chain.
class DirectedEvolver {
 public:
  /// teleport gamma in [0, 1); 0 keeps the raw chain (caller must ensure
  /// strong connectivity + aperiodicity for a meaningful mixing time).
  explicit DirectedEvolver(const DiGraph& g, double teleport = 0.0);

  [[nodiscard]] std::size_t dim() const noexcept { return inv_out_deg_.size(); }
  [[nodiscard]] double teleport() const noexcept { return teleport_; }

  /// next = current * P (teleport + dangling handling applied).
  void step(std::span<const double> current, std::span<double> next) const noexcept;

  void advance(std::vector<double>& dist, std::size_t steps);

  [[nodiscard]] std::vector<double> point_mass(NodeId v) const;

 private:
  const DiGraph* graph_;
  std::vector<double> inv_out_deg_;  // 0 for dangling vertices
  std::vector<double> scratch_;
  double teleport_;
};

/// Stationary distribution by power iteration to L1 residual < tol.
/// Requires ergodicity: either teleport > 0, or a strongly connected
/// aperiodic graph (residual simply stops shrinking otherwise and the
/// last iterate is returned with converged = false).
struct DirectedStationary {
  std::vector<double> pi;
  std::size_t iterations = 0;
  bool converged = false;
};
[[nodiscard]] DirectedStationary directed_stationary(const DiGraph& g,
                                                     double teleport = 0.0,
                                                     double tol = 1e-12,
                                                     std::size_t max_iterations = 200000);

/// TVD trajectory of a point mass at `source` against the chain's own
/// stationary distribution: result[t-1] = || pi - e_source P^t ||_tv.
[[nodiscard]] std::vector<double> directed_tvd_trajectory(const DiGraph& g,
                                                          NodeId source,
                                                          std::size_t max_steps,
                                                          double teleport = 0.0);

/// Sampled directed mixing time: max over sources of the first t with
/// TVD < eps (kNotMixedDirected when a source never gets there).
inline constexpr std::size_t kNotMixedDirected = static_cast<std::size_t>(-1);
struct DirectedMixingResult {
  std::size_t worst = 0;
  double mean = 0.0;
  std::size_t unmixed_sources = 0;
};
[[nodiscard]] DirectedMixingResult directed_mixing_time(const DiGraph& g,
                                                        std::span<const NodeId> sources,
                                                        std::size_t max_steps, double eps,
                                                        double teleport = 0.0);

}  // namespace socmix::digraph
