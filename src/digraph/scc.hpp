// Strongly connected components — the directed analogue of the paper's
// largest-connected-component preprocessing: a directed walk's mixing time
// is only defined on a strongly connected (and aperiodic) piece.
#pragma once

#include <vector>

#include "digraph/digraph.hpp"

namespace socmix::digraph {

/// SCC labeling (Tarjan's algorithm, iterative — safe for deep graphs).
struct SccResult {
  /// component[v] = dense SCC id (reverse topological order of Tarjan).
  std::vector<NodeId> component;
  std::vector<NodeId> sizes;

  [[nodiscard]] std::size_t count() const noexcept { return sizes.size(); }
  [[nodiscard]] NodeId largest() const noexcept;
};

[[nodiscard]] SccResult strongly_connected_components(const DiGraph& g);

/// Extracts the largest SCC as a standalone DiGraph.
[[nodiscard]] ExtractedDiSubgraph largest_scc(const DiGraph& g);

/// True if the whole digraph is one SCC (and nonempty).
[[nodiscard]] bool is_strongly_connected(const DiGraph& g);

}  // namespace socmix::digraph
