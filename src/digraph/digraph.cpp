#include "digraph/digraph.hpp"

#include <algorithm>

#include "graph/edge_list.hpp"

namespace socmix::digraph {

DiGraph DiGraph::from_arcs(std::vector<Arc> arcs, NodeId num_nodes) {
  std::erase_if(arcs, [](const Arc& a) { return a.from == a.to; });
  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());

  NodeId n = num_nodes;
  for (const Arc& a : arcs) {
    n = std::max(n, static_cast<NodeId>(std::max(a.from, a.to) + 1));
  }

  std::vector<EdgeIndex> out_offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<EdgeIndex> in_offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const Arc& a : arcs) {
    ++out_offsets[a.from + 1];
    ++in_offsets[a.to + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) {
    out_offsets[i] += out_offsets[i - 1];
    in_offsets[i] += in_offsets[i - 1];
  }

  std::vector<NodeId> out_neighbors(arcs.size());
  std::vector<NodeId> in_neighbors(arcs.size());
  std::vector<EdgeIndex> out_cursor(out_offsets.begin(), out_offsets.end() - 1);
  std::vector<EdgeIndex> in_cursor(in_offsets.begin(), in_offsets.end() - 1);
  for (const Arc& a : arcs) {  // arcs sorted => out lists come out sorted
    out_neighbors[out_cursor[a.from]++] = a.to;
    in_neighbors[in_cursor[a.to]++] = a.from;
  }
  for (NodeId v = 0; v < n; ++v) {
    std::sort(in_neighbors.begin() + static_cast<std::ptrdiff_t>(in_offsets[v]),
              in_neighbors.begin() + static_cast<std::ptrdiff_t>(in_offsets[v + 1]));
  }
  return DiGraph{std::move(out_offsets), std::move(out_neighbors), std::move(in_offsets),
                 std::move(in_neighbors)};
}

bool DiGraph::has_arc(NodeId u, NodeId v) const noexcept {
  const auto succ = successors(u);
  return std::binary_search(succ.begin(), succ.end(), v);
}

EdgeIndex DiGraph::reciprocal_arcs() const noexcept {
  EdgeIndex count = 0;
  const NodeId n = num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : successors(u)) {
      if (has_arc(v, u)) ++count;
    }
  }
  return count;
}

std::vector<NodeId> DiGraph::dangling_nodes() const {
  std::vector<NodeId> out;
  const NodeId n = num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    if (out_degree(v) == 0) out.push_back(v);
  }
  return out;
}

SymmetrizeStats symmetrize(const DiGraph& g) {
  SymmetrizeStats stats;
  stats.directed_arcs = g.num_arcs();

  graph::EdgeList edges{g.num_nodes()};
  edges.reserve(g.num_arcs());
  const NodeId n = g.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.successors(u)) edges.add(u, v);
  }
  stats.graph = graph::Graph::from_edges(std::move(edges));
  stats.undirected_edges = stats.graph.num_edges();
  stats.reciprocity =
      stats.directed_arcs == 0
          ? 0.0
          : static_cast<double>(g.reciprocal_arcs()) / static_cast<double>(stats.directed_arcs);
  return stats;
}

ExtractedDiSubgraph induced_subdigraph(const DiGraph& g, std::span<const NodeId> members) {
  ExtractedDiSubgraph out;
  out.original_id.assign(members.begin(), members.end());

  std::vector<NodeId> new_id(g.num_nodes(), graph::kInvalidNode);
  for (std::size_t i = 0; i < out.original_id.size(); ++i) {
    new_id[out.original_id[i]] = static_cast<NodeId>(i);
  }

  std::vector<Arc> arcs;
  for (std::size_t i = 0; i < out.original_id.size(); ++i) {
    const NodeId u = out.original_id[i];
    for (const NodeId v : g.successors(u)) {
      if (new_id[v] != graph::kInvalidNode) {
        arcs.push_back(Arc{static_cast<NodeId>(i), new_id[v]});
      }
    }
  }
  out.graph = DiGraph::from_arcs(std::move(arcs),
                                 static_cast<NodeId>(out.original_id.size()));
  return out;
}

}  // namespace socmix::digraph
