// Directed edge-list I/O — the native format of the paper's directed
// datasets (wiki-Vote, soc-Slashdot, soc-Epinions, LiveJournal crawls).
#pragma once

#include <iosfwd>
#include <string>

#include "digraph/digraph.hpp"
#include "util/rng.hpp"

namespace socmix::digraph {

struct DirectedLoadResult {
  DiGraph graph;
  std::size_t lines_read = 0;
  std::size_t arcs_parsed = 0;
  std::size_t self_loops_dropped = 0;
  std::size_t duplicates_dropped = 0;
};

/// Parses "u v" per line as the arc u -> v ('#'/'%' comments allowed);
/// sparse ids densified in first-appearance order. Direction is preserved
/// (contrast graph::load_edge_list, which symmetrizes).
[[nodiscard]] DirectedLoadResult load_directed_edge_list(std::istream& in);
[[nodiscard]] DirectedLoadResult load_directed_edge_list_file(const std::string& path);

/// Writes one "u v" line per arc.
void save_directed_edge_list(const DiGraph& g, std::ostream& out);

/// Synthetic direction: orient each undirected edge of `g` randomly, and
/// additionally keep both directions with probability `reciprocity` —
/// matching the reciprocity knob of real crawls (Wiki-vote ~0.06,
/// LiveJournal ~0.73). Used to build directed stand-ins from the Table-1
/// generators.
[[nodiscard]] DiGraph randomly_orient(const graph::Graph& g, double reciprocity,
                                      util::Rng& rng);

}  // namespace socmix::digraph
