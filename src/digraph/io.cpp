#include "digraph/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

#include "util/string_util.hpp"

namespace socmix::digraph {

DirectedLoadResult load_directed_edge_list(std::istream& in) {
  DirectedLoadResult result;
  std::vector<Arc> arcs;
  std::unordered_map<std::uint64_t, NodeId> remap;
  const auto densify = [&](std::uint64_t raw) -> NodeId {
    const auto [it, inserted] = remap.try_emplace(raw, static_cast<NodeId>(remap.size()));
    return it->second;
  };

  std::string line;
  while (std::getline(in, line)) {
    ++result.lines_read;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#' || trimmed.front() == '%') continue;
    const auto fields = util::split_ws(trimmed);
    if (fields.size() < 2) {
      throw std::runtime_error{"load_directed_edge_list: malformed line " +
                               std::to_string(result.lines_read)};
    }
    const auto u = util::parse_i64(fields[0]);
    const auto v = util::parse_i64(fields[1]);
    if (!u || !v || *u < 0 || *v < 0) {
      throw std::runtime_error{"load_directed_edge_list: bad vertex id at line " +
                               std::to_string(result.lines_read)};
    }
    ++result.arcs_parsed;
    const NodeId from = densify(static_cast<std::uint64_t>(*u));
    const NodeId to = densify(static_cast<std::uint64_t>(*v));
    if (from == to) {
      ++result.self_loops_dropped;
      continue;
    }
    arcs.push_back(Arc{from, to});
  }

  const std::size_t before = arcs.size();
  result.graph = DiGraph::from_arcs(std::move(arcs), static_cast<NodeId>(remap.size()));
  result.duplicates_dropped = before - static_cast<std::size_t>(result.graph.num_arcs());
  return result;
}

DirectedLoadResult load_directed_edge_list_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"load_directed_edge_list_file: cannot open " + path};
  return load_directed_edge_list(in);
}

void save_directed_edge_list(const DiGraph& g, std::ostream& out) {
  const NodeId n = g.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.successors(u)) out << u << ' ' << v << '\n';
  }
}

DiGraph randomly_orient(const graph::Graph& g, double reciprocity, util::Rng& rng) {
  if (reciprocity < 0.0 || reciprocity > 1.0) {
    throw std::invalid_argument{"randomly_orient: reciprocity must be in [0, 1]"};
  }
  std::vector<Arc> arcs;
  arcs.reserve(static_cast<std::size_t>(g.num_edges()) * 2);
  const NodeId n = g.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u >= v) continue;
      if (rng.chance(reciprocity)) {
        arcs.push_back(Arc{u, v});
        arcs.push_back(Arc{v, u});
      } else if (rng.chance(0.5)) {
        arcs.push_back(Arc{u, v});
      } else {
        arcs.push_back(Arc{v, u});
      }
    }
  }
  return DiGraph::from_arcs(std::move(arcs), n);
}

}  // namespace socmix::digraph
