// Directed simple graphs in dual-CSR form (out- and in-adjacency).
//
// Several of the paper's datasets are natively directed (Wiki-vote,
// Slashdot, Epinion, LiveJournal); the paper converts them to undirected
// before measuring (§4), "similar to what is performed in other work".
// This module implements the directed side so that conversion is an
// explicit, measurable step rather than an assumption — and so the mixing
// time of the *directed* chain (the authors' own follow-up study, "On the
// Mixing Time of Directed Social Graphs") can be measured too.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace socmix::digraph {

using graph::EdgeIndex;
using graph::NodeId;

/// One directed arc u -> v.
struct Arc {
  NodeId from = 0;
  NodeId to = 0;

  friend constexpr bool operator==(const Arc&, const Arc&) = default;
  friend constexpr auto operator<=>(const Arc&, const Arc&) = default;
};

/// Immutable simple directed graph. Invariants: no self-loops, no duplicate
/// arcs, both adjacency directions materialized and sorted.
class DiGraph {
 public:
  DiGraph() = default;

  /// Builds from an arc list; self-loops and exact duplicates are dropped.
  /// `num_nodes` may exceed the largest endpoint to declare isolated ids.
  [[nodiscard]] static DiGraph from_arcs(std::vector<Arc> arcs, NodeId num_nodes = 0);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return out_offsets_.empty() ? 0 : static_cast<NodeId>(out_offsets_.size() - 1);
  }
  [[nodiscard]] EdgeIndex num_arcs() const noexcept { return out_neighbors_.size(); }

  [[nodiscard]] NodeId out_degree(NodeId v) const noexcept {
    return static_cast<NodeId>(out_offsets_[v + 1] - out_offsets_[v]);
  }
  [[nodiscard]] NodeId in_degree(NodeId v) const noexcept {
    return static_cast<NodeId>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Sorted successor / predecessor lists.
  [[nodiscard]] std::span<const NodeId> successors(NodeId v) const noexcept {
    return {out_neighbors_.data() + out_offsets_[v],
            out_neighbors_.data() + out_offsets_[v + 1]};
  }
  [[nodiscard]] std::span<const NodeId> predecessors(NodeId v) const noexcept {
    return {in_neighbors_.data() + in_offsets_[v],
            in_neighbors_.data() + in_offsets_[v + 1]};
  }

  [[nodiscard]] bool has_arc(NodeId u, NodeId v) const noexcept;

  /// Number of arcs whose reverse also exists (counted once per ordered
  /// pair, so reciprocity = reciprocal_arcs / num_arcs).
  [[nodiscard]] EdgeIndex reciprocal_arcs() const noexcept;

  /// Vertices with no outgoing arcs ("dangling" — walk absorbers).
  [[nodiscard]] std::vector<NodeId> dangling_nodes() const;

 private:
  DiGraph(std::vector<EdgeIndex> out_offsets, std::vector<NodeId> out_neighbors,
          std::vector<EdgeIndex> in_offsets, std::vector<NodeId> in_neighbors)
      : out_offsets_(std::move(out_offsets)),
        out_neighbors_(std::move(out_neighbors)),
        in_offsets_(std::move(in_offsets)),
        in_neighbors_(std::move(in_neighbors)) {}

  std::vector<EdgeIndex> out_offsets_;
  std::vector<NodeId> out_neighbors_;
  std::vector<EdgeIndex> in_offsets_;
  std::vector<NodeId> in_neighbors_;
};

/// Statistics of the paper's directed -> undirected preprocessing step.
struct SymmetrizeStats {
  graph::Graph graph;           ///< the undirected result
  EdgeIndex directed_arcs = 0;  ///< arcs in the input
  EdgeIndex undirected_edges = 0;
  /// Fraction of arcs whose reverse was already present.
  double reciprocity = 0.0;
};

/// The paper's §4 conversion, with bookkeeping: each arc becomes an
/// undirected edge; reciprocal pairs collapse to one.
[[nodiscard]] SymmetrizeStats symmetrize(const DiGraph& g);

/// Extracts the induced directed subgraph on `members`, relabeled densely.
struct ExtractedDiSubgraph {
  DiGraph graph;
  std::vector<NodeId> original_id;
};
[[nodiscard]] ExtractedDiSubgraph induced_subdigraph(const DiGraph& g,
                                                     std::span<const NodeId> members);

}  // namespace socmix::digraph
