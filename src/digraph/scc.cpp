#include "digraph/scc.hpp"

#include <algorithm>

namespace socmix::digraph {

NodeId SccResult::largest() const noexcept {
  if (sizes.empty()) return graph::kInvalidNode;
  const auto it = std::max_element(sizes.begin(), sizes.end());
  return static_cast<NodeId>(it - sizes.begin());
}

SccResult strongly_connected_components(const DiGraph& g) {
  // Iterative Tarjan. Frames carry (vertex, next-successor-index).
  const NodeId n = g.num_nodes();
  constexpr NodeId kUnvisited = graph::kInvalidNode;

  SccResult out;
  out.component.assign(n, kUnvisited);

  std::vector<NodeId> index(n, kUnvisited);
  std::vector<NodeId> lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<NodeId> stack;             // Tarjan's SCC stack
  std::vector<std::pair<NodeId, NodeId>> frames;  // DFS call stack
  NodeId next_index = 0;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.emplace_back(root, 0);
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;

    while (!frames.empty()) {
      auto& [v, cursor] = frames.back();
      const auto succ = g.successors(v);
      if (cursor < succ.size()) {
        const NodeId w = succ[cursor++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          frames.emplace_back(w, 0);
        } else if (on_stack[w] != 0) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        // v is finished: maybe an SCC root, then propagate lowlink upward.
        if (lowlink[v] == index[v]) {
          const auto label = static_cast<NodeId>(out.sizes.size());
          NodeId count = 0;
          NodeId w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            out.component[w] = label;
            ++count;
          } while (w != v);
          out.sizes.push_back(count);
        }
        const NodeId finished = v;
        frames.pop_back();
        if (!frames.empty()) {
          const NodeId parent = frames.back().first;
          lowlink[parent] = std::min(lowlink[parent], lowlink[finished]);
        }
      }
    }
  }
  return out;
}

ExtractedDiSubgraph largest_scc(const DiGraph& g) {
  const SccResult scc = strongly_connected_components(g);
  const NodeId target = scc.largest();
  std::vector<NodeId> members;
  if (target != graph::kInvalidNode) {
    members.reserve(scc.sizes[target]);
    const NodeId n = g.num_nodes();
    for (NodeId v = 0; v < n; ++v) {
      if (scc.component[v] == target) members.push_back(v);
    }
  }
  return induced_subdigraph(g, members);
}

bool is_strongly_connected(const DiGraph& g) {
  if (g.num_nodes() == 0) return false;
  return strongly_connected_components(g).count() == 1;
}

}  // namespace socmix::digraph
