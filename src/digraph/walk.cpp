#include "digraph/walk.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/vector_ops.hpp"

namespace socmix::digraph {

DirectedEvolver::DirectedEvolver(const DiGraph& g, double teleport)
    : graph_(&g), teleport_(teleport) {
  if (teleport < 0.0 || teleport >= 1.0) {
    throw std::invalid_argument{"DirectedEvolver: teleport must be in [0, 1)"};
  }
  const NodeId n = g.num_nodes();
  if (n == 0) throw std::invalid_argument{"DirectedEvolver: empty graph"};
  inv_out_deg_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId d = g.out_degree(v);
    inv_out_deg_[v] = d == 0 ? 0.0 : 1.0 / static_cast<double>(d);
  }
  scratch_.resize(n);
}

void DirectedEvolver::step(std::span<const double> current,
                           std::span<double> next) const noexcept {
  const DiGraph& g = *graph_;
  const NodeId n = g.num_nodes();

  // Mass sitting on dangling vertices redistributes uniformly.
  double dangling_mass = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    if (inv_out_deg_[v] == 0.0) dangling_mass += current[v];
  }
  const double base =
      (teleport_ + (1.0 - teleport_) * dangling_mass) / static_cast<double>(n);
  const double keep = 1.0 - teleport_;

  for (NodeId j = 0; j < n; ++j) {
    double acc = 0.0;
    for (const NodeId i : g.predecessors(j)) {
      acc += current[i] * inv_out_deg_[i];
    }
    next[j] = keep * acc + base;
  }
}

void DirectedEvolver::advance(std::vector<double>& dist, std::size_t steps) {
  for (std::size_t t = 0; t < steps; ++t) {
    step(dist, scratch_);
    dist.swap(scratch_);
  }
}

std::vector<double> DirectedEvolver::point_mass(NodeId v) const {
  std::vector<double> dist(dim(), 0.0);
  dist[v] = 1.0;
  return dist;
}

DirectedStationary directed_stationary(const DiGraph& g, double teleport, double tol,
                                       std::size_t max_iterations) {
  DirectedEvolver evolver{g, teleport};
  DirectedStationary out;
  out.pi.assign(g.num_nodes(), 1.0 / static_cast<double>(g.num_nodes()));
  std::vector<double> next(out.pi.size());
  double previous_residual = 2.0;
  for (std::size_t it = 1; it <= max_iterations; ++it) {
    evolver.step(out.pi, next);
    double residual = 0.0;
    for (std::size_t v = 0; v < next.size(); ++v) {
      residual += std::fabs(next[v] - out.pi[v]);
    }
    out.pi.swap(next);
    out.iterations = it;
    if (residual < tol) {
      out.converged = true;
      break;
    }
    // Periodic chains plateau: give up when the residual stops moving.
    if (it % 1000 == 0) {
      if (residual > 0.999 * previous_residual && residual > 1e-6) break;
      previous_residual = residual;
    }
  }
  return out;
}

std::vector<double> directed_tvd_trajectory(const DiGraph& g, NodeId source,
                                            std::size_t max_steps, double teleport) {
  const auto stationary = directed_stationary(g, teleport);
  DirectedEvolver evolver{g, teleport};
  auto dist = evolver.point_mass(source);
  std::vector<double> next(dist.size());
  std::vector<double> out;
  out.reserve(max_steps);
  for (std::size_t t = 0; t < max_steps; ++t) {
    evolver.step(dist, next);
    dist.swap(next);
    out.push_back(linalg::total_variation(dist, stationary.pi));
  }
  return out;
}

DirectedMixingResult directed_mixing_time(const DiGraph& g,
                                          std::span<const NodeId> sources,
                                          std::size_t max_steps, double eps,
                                          double teleport) {
  const auto stationary = directed_stationary(g, teleport);
  DirectedEvolver evolver{g, teleport};
  DirectedMixingResult out;
  double sum = 0.0;
  for (const NodeId source : sources) {
    auto dist = evolver.point_mass(source);
    std::vector<double> next(dist.size());
    std::size_t mixed_at = kNotMixedDirected;
    for (std::size_t t = 1; t <= max_steps; ++t) {
      evolver.step(dist, next);
      dist.swap(next);
      if (linalg::total_variation(dist, stationary.pi) < eps) {
        mixed_at = t;
        break;
      }
    }
    if (mixed_at == kNotMixedDirected) {
      ++out.unmixed_sources;
      sum += static_cast<double>(max_steps);
      out.worst = kNotMixedDirected;
    } else {
      sum += static_cast<double>(mixed_at);
      if (out.worst != kNotMixedDirected) out.worst = std::max(out.worst, mixed_at);
    }
  }
  if (!sources.empty()) out.mean = sum / static_cast<double>(sources.size());
  return out;
}

}  // namespace socmix::digraph
