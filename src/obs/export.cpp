#include "obs/export.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace socmix::obs {

namespace {

/// JSON string escaping for metric names (quotes, backslashes, control
/// characters; names are ASCII in practice).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Full-precision doubles that stay valid JSON (no inf/nan literals).
void append_double(std::ostream& out, double v) {
  if (v != v) {
    out << "null";
    return;
  }
  out << std::setprecision(17) << v;
}

std::mutex g_config_mutex;
std::string g_metrics_path;
std::string g_trace_path;
std::vector<MetricsSnapshot::ProvenanceEntry> g_provenance;
std::atomic<bool> g_atexit_registered{false};

bool ends_with_csv(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
}

std::string iso8601_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

void set_provenance_entry(std::string key, std::string value) {
  const std::lock_guard<std::mutex> lock{g_config_mutex};
  for (auto& entry : g_provenance) {
    if (entry.key == key) {
      entry.value = std::move(value);
      return;
    }
  }
  g_provenance.push_back({std::move(key), std::move(value)});
}

void stamp_provenance(MetricsSnapshot& snapshot) {
  snapshot.provenance.clear();
  snapshot.provenance.push_back({"timestamp", iso8601_now()});
  const std::lock_guard<std::mutex> lock{g_config_mutex};
  for (const auto& entry : g_provenance) snapshot.provenance.push_back(entry);
}

void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& out) {
  out << "{";
  if (!snapshot.provenance.empty()) {
    out << "\"provenance\":{";
    for (std::size_t i = 0; i < snapshot.provenance.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << json_escape(snapshot.provenance[i].key) << "\":\""
          << json_escape(snapshot.provenance[i].value) << "\"";
    }
    out << "},";
  }
  out << "\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << json_escape(snapshot.counters[i].name)
        << "\":" << snapshot.counters[i].value;
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << json_escape(snapshot.gauges[i].name) << "\":";
    append_double(out, snapshot.gauges[i].value);
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i > 0) out << ",";
    out << "\"" << json_escape(h.name) << "\":{\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out << ",";
      append_double(out, h.bounds[b]);
    }
    out << "],\"counts\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out << ",";
      out << h.counts[b];
    }
    out << "],\"count\":" << h.count << ",\"sum\":";
    append_double(out, h.sum);
    if (h.count > 0) {
      out << ",\"p50\":";
      append_double(out, h.quantile(0.50));
      out << ",\"p95\":";
      append_double(out, h.quantile(0.95));
      out << ",\"p99\":";
      append_double(out, h.quantile(0.99));
    }
    out << "}";
  }
  out << "}}";
}

void write_metrics_csv(const MetricsSnapshot& snapshot, std::ostream& out) {
  out << "kind,name,value,count,sum\n";
  // Provenance values (compiler strings) may contain commas; quote them.
  for (const auto& p : snapshot.provenance) {
    std::string value = p.value;
    if (value.find_first_of(",\"\n") != std::string::npos) {
      std::string quoted = "\"";
      for (const char c : value) {
        if (c == '"') quoted += '"';
        quoted += c;
      }
      quoted += '"';
      value = std::move(quoted);
    }
    out << "provenance," << p.key << "," << value << ",,\n";
  }
  for (const auto& c : snapshot.counters) {
    out << "counter," << c.name << "," << c.value << ",,\n";
  }
  for (const auto& g : snapshot.gauges) {
    out << "gauge," << g.name << ",";
    append_double(out, g.value);
    out << ",,\n";
  }
  for (const auto& h : snapshot.histograms) {
    out << "histogram," << h.name << ",," << h.count << ",";
    append_double(out, h.sum);
    out << "\n";
  }
}

void write_metrics_summary(const MetricsSnapshot& snapshot, std::ostream& out) {
  std::size_t width = 0;
  for (const auto& c : snapshot.counters) width = std::max(width, c.name.size());
  for (const auto& g : snapshot.gauges) width = std::max(width, g.name.size());
  for (const auto& h : snapshot.histograms) width = std::max(width, h.name.size());

  out << "== metrics ==\n";
  for (const auto& c : snapshot.counters) {
    out << "  " << std::left << std::setw(static_cast<int>(width)) << c.name << "  "
        << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    out << "  " << std::left << std::setw(static_cast<int>(width)) << g.name << "  "
        << std::setprecision(6) << g.value << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    out << "  " << std::left << std::setw(static_cast<int>(width)) << h.name << "  n="
        << h.count;
    if (h.count > 0) {
      out << " mean=" << std::setprecision(6)
          << h.sum / static_cast<double>(h.count) << " p50=" << h.quantile(0.50)
          << " p95=" << h.quantile(0.95) << " p99=" << h.quantile(0.99);
    }
    out << "\n";
  }
}

void set_metrics_out(std::string path) {
  const std::lock_guard<std::mutex> lock{g_config_mutex};
  g_metrics_path = std::move(path);
}

void set_trace_out(std::string path) {
  const bool enable = !path.empty();
  {
    const std::lock_guard<std::mutex> lock{g_config_mutex};
    g_trace_path = std::move(path);
  }
  set_tracing_enabled(enable);
}

void flush() {
  // Stop the sampler first: its final JSONL line is taken before this
  // snapshot, so sampled counter totals never exceed the final snapshot.
  stop_process_sampler();

  std::string metrics_path;
  std::string trace_path;
  {
    const std::lock_guard<std::mutex> lock{g_config_mutex};
    metrics_path = g_metrics_path;
    trace_path = g_trace_path;
  }

  if (!metrics_path.empty()) {
    MetricsSnapshot snapshot = Registry::instance().snapshot();
    stamp_provenance(snapshot);
    std::ofstream out{metrics_path};
    if (out) {
      if (ends_with_csv(metrics_path)) {
        write_metrics_csv(snapshot, out);
      } else {
        write_metrics_json(snapshot, out);
      }
    } else {
      std::fprintf(stderr, "obs: cannot write metrics to %s\n", metrics_path.c_str());
    }
    std::ostringstream summary;
    write_metrics_summary(snapshot, summary);
    std::fputs(summary.str().c_str(), stderr);
  }

  if (!trace_path.empty()) {
    std::ofstream out{trace_path};
    if (out) {
      write_trace_json(out);
      if (const std::uint64_t dropped = trace_dropped_events(); dropped > 0) {
        std::fprintf(stderr, "obs: trace dropped %llu events (per-thread buffer full)\n",
                     static_cast<unsigned long long>(dropped));
      }
    } else {
      std::fprintf(stderr, "obs: cannot write trace to %s\n", trace_path.c_str());
    }
  }
}

void flush_on_exit() {
  if (!g_atexit_registered.exchange(true)) {
    std::atexit([] { flush(); });
  }
}

}  // namespace socmix::obs
