// Umbrella header + instrumentation macros for the observability layer.
//
// Hot paths are instrumented through these macros only, so a build with
// -DSOCMIX_OBS=OFF (which defines SOCMIX_OBS_ENABLED=0) reduces every one
// of them to nothing and leaves the instrumented code byte-for-byte on the
// PR-1 fast paths.
//
// Macro usage rules for hot paths (see DESIGN.md "Observability"):
//  * Counters/histograms at block/sweep/iteration granularity, never per
//    edge or per vertex.
//  * Metric names are string literals; the registry handle is resolved
//    once per call site (function-local static) and the steady-state cost
//    is one relaxed atomic add.
//  * Spans guard whole phases or sweeps; a disabled tracer costs one
//    relaxed load.
#pragma once

#ifndef SOCMIX_OBS_ENABLED
#define SOCMIX_OBS_ENABLED 1
#endif

#include "obs/export.hpp"    // IWYU pragma: export
#include "obs/metrics.hpp"   // IWYU pragma: export
#include "obs/progress.hpp"  // IWYU pragma: export
#include "obs/trace.hpp"     // IWYU pragma: export

#define SOCMIX_OBS_CONCAT_INNER(a, b) a##b
#define SOCMIX_OBS_CONCAT(a, b) SOCMIX_OBS_CONCAT_INNER(a, b)

#if SOCMIX_OBS_ENABLED

/// Adds `n` to the counter named `name` (a string literal).
#define SOCMIX_COUNTER_ADD(name, n)                                    \
  do {                                                                 \
    static const ::socmix::obs::Counter socmix_obs_counter_ =          \
        ::socmix::obs::Registry::instance().counter(name);             \
    socmix_obs_counter_.add(static_cast<std::uint64_t>(n));            \
  } while (0)

/// Sets the gauge named `name` to `v`.
#define SOCMIX_GAUGE_SET(name, v)                                      \
  do {                                                                 \
    static const ::socmix::obs::Gauge socmix_obs_gauge_ =              \
        ::socmix::obs::Registry::instance().gauge(name);               \
    socmix_obs_gauge_.set(static_cast<double>(v));                     \
  } while (0)

/// Records `v` (seconds) into the time-bucketed histogram named `name`.
#define SOCMIX_TIME_OBSERVE(name, v)                                   \
  do {                                                                 \
    static const ::socmix::obs::Histogram socmix_obs_hist_ =           \
        ::socmix::obs::Registry::instance().time_histogram(name);      \
    socmix_obs_hist_.observe(static_cast<double>(v));                  \
  } while (0)

/// Records `v` into the histogram named `name` with explicit `bounds`
/// (a std::span<const double>, identical at every call site of the name).
#define SOCMIX_HISTOGRAM_OBSERVE(name, bounds, v)                      \
  do {                                                                 \
    static const ::socmix::obs::Histogram socmix_obs_hist_ =           \
        ::socmix::obs::Registry::instance().histogram(name, bounds);   \
    socmix_obs_hist_.observe(static_cast<double>(v));                  \
  } while (0)

/// Scoped span covering the rest of the enclosing block.
#define SOCMIX_TRACE_SPAN(name) \
  const ::socmix::obs::TraceSpan SOCMIX_OBS_CONCAT(socmix_obs_span_, __LINE__){name}

#else  // !SOCMIX_OBS_ENABLED

#define SOCMIX_COUNTER_ADD(name, n) \
  do {                              \
  } while (0)
#define SOCMIX_GAUGE_SET(name, v) \
  do {                            \
  } while (0)
#define SOCMIX_TIME_OBSERVE(name, v) \
  do {                               \
  } while (0)
#define SOCMIX_HISTOGRAM_OBSERVE(name, bounds, v) \
  do {                                            \
  } while (0)
#define SOCMIX_TRACE_SPAN(name) \
  do {                          \
  } while (0)

#endif  // SOCMIX_OBS_ENABLED
