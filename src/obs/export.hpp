// Metrics/trace exporters and end-of-process flushing.
//
// Drivers configure output paths once (core::configure_observability wires
// --metrics-out / --trace-out here) and call flush_on_exit(); flush() then
// writes a metrics snapshot (JSON, or CSV when the path ends in ".csv"), a
// Chrome trace_event file, and a human-readable summary table on stderr.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace socmix::obs {

/// Serializes a snapshot as a single JSON object:
///   {"provenance": {...},  (omitted when the snapshot carries none)
///    "counters": {...}, "gauges": {...},
///    "histograms": {"name": {"bounds": [...], "counts": [...],
///                            "count": N, "sum": S,
///                            "p50": x, "p95": y, "p99": z}}}
/// Quantiles are linear-interpolation estimates within the fixed buckets
/// (see MetricsSnapshot::HistogramSample::quantile) and appear only for
/// non-empty histograms.
void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& out);

/// Serializes a snapshot as rows of `kind,name,value,count,sum`; any
/// provenance entries come first as `provenance,<key>,<value>,,` rows.
void write_metrics_csv(const MetricsSnapshot& snapshot, std::ostream& out);

/// Renders the snapshot as an aligned, human-readable table (histograms as
/// count/mean, not full buckets).
void write_metrics_summary(const MetricsSnapshot& snapshot, std::ostream& out);

/// Registers (or overwrites) a provenance key/value that stamp_provenance
/// copies into snapshots. Populated by bench::apply_metrics_provenance
/// (git, build_type, compiler, simd_tier); anything may add more.
void set_provenance_entry(std::string key, std::string value);

/// Copies the registered provenance entries into the snapshot, prefixed
/// with a fresh ISO-8601 UTC "timestamp" entry. Registry::snapshot() stays
/// provenance-free so exporters remain pure functions of their input.
void stamp_provenance(MetricsSnapshot& snapshot);

/// Where flush() writes the metrics snapshot; ".csv" suffix selects the
/// CSV exporter, anything else gets JSON. Empty disables.
void set_metrics_out(std::string path);
/// Where flush() writes the Chrome trace; also enables span recording when
/// non-empty. Empty disables.
void set_trace_out(std::string path);

/// Writes whatever outputs are configured (and a summary table to stderr
/// when a metrics path is set). Idempotent per configuration; safe to call
/// with nothing configured.
void flush();

/// Registers flush() via std::atexit exactly once.
void flush_on_exit();

}  // namespace socmix::obs
