// Scoped tracing spans recorded into per-thread ring buffers, exportable
// as Chrome trace_event JSON (open in about://tracing or ui.perfetto.dev).
//
// Cost model: with tracing disabled (the default) a span is one relaxed
// atomic load and a branch. Enabled, begin/end are two steady_clock reads
// plus a short critical section on the calling thread's own buffer mutex —
// uncontended except while an export is draining. Span names must be
// string literals (or otherwise outlive the process); only the pointer is
// stored.
//
// Buffers are bounded (kThreadCapacity events per thread). When a buffer
// fills, the newest events are dropped and counted, so a runaway loop
// degrades the trace instead of memory.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace socmix::obs {

/// Turns span recording on/off process-wide (off by default). Spans opened
/// while enabled record even if tracing is disabled before they close.
void set_tracing_enabled(bool enabled) noexcept;
[[nodiscard]] bool tracing_enabled() noexcept;

/// Nanoseconds since the process's trace epoch (first use).
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;

namespace detail {
void record_span(const char* name, std::uint64_t start_ns, std::uint64_t end_ns) noexcept;
}  // namespace detail

/// RAII span: records [construction, destruction) on the calling thread.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept {
    if (tracing_enabled()) {
      name_ = name;
      start_ns_ = trace_now_ns();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) detail::record_span(name_, start_ns_, trace_now_ns());
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

/// Number of events dropped so far because a thread's buffer was full.
[[nodiscard]] std::uint64_t trace_dropped_events() noexcept;

/// Writes every recorded span as Chrome trace_event JSON ("X" complete
/// events, one tid per recording thread). Safe to call while spans are
/// still being recorded; events recorded after the call may be missed.
void write_trace_json(std::ostream& out);

/// Discards all recorded events (buffers stay allocated).
void clear_trace();

}  // namespace socmix::obs
