// Periodic stderr progress lines with ETA for long sweeps.
//
// A ProgressMeter is free to construct even when progress output is
// disabled (the default): add() is then a single relaxed atomic add. With
// --progress, at most one line per second is printed, rate-derived ETA
// included, from whichever worker thread happens to cross the interval.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace socmix::obs {

/// Enables/disables stderr progress lines process-wide (off by default).
void set_progress_enabled(bool enabled) noexcept;
[[nodiscard]] bool progress_enabled() noexcept;

class ProgressMeter {
 public:
  /// `label` prefixes every line; `total` is the unit count add() counts
  /// toward (eta needs total > 0).
  ProgressMeter(std::string label, std::uint64_t total);

  /// Thread-safe. Records n completed units and maybe prints a line.
  void add(std::uint64_t n = 1);

  /// Records n units completed *before this process started* (checkpoint
  /// restore). They count toward done/percent but are excluded from the
  /// rate, so the ETA reflects live throughput instead of crediting this
  /// run with work a previous one did. Call before the first add().
  void seed_restored(std::uint64_t n);

  /// Prints the final 100% line (if enabled and anything was added).
  void finish();

  [[nodiscard]] std::uint64_t done() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }

 private:
  void print_line(std::uint64_t done_now, bool final);

  std::string label_;
  std::uint64_t total_;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> restored_{0};
  std::atomic<std::int64_t> next_print_ns_;
  std::uint64_t start_ns_;
  std::mutex print_mutex_;
};

}  // namespace socmix::obs
