#include "obs/progress.hpp"

#include <cstdio>

#include "obs/trace.hpp"

namespace socmix::obs {

namespace {

std::atomic<bool> g_progress_enabled{false};

constexpr std::int64_t kPrintIntervalNs = 1'000'000'000;  // 1 line/second max

}  // namespace

void set_progress_enabled(bool enabled) noexcept {
  g_progress_enabled.store(enabled, std::memory_order_relaxed);
}

bool progress_enabled() noexcept {
  return g_progress_enabled.load(std::memory_order_relaxed);
}

ProgressMeter::ProgressMeter(std::string label, std::uint64_t total)
    : label_(std::move(label)), total_(total), start_ns_(trace_now_ns()) {
  next_print_ns_.store(static_cast<std::int64_t>(start_ns_) + kPrintIntervalNs,
                       std::memory_order_relaxed);
}

void ProgressMeter::add(std::uint64_t n) {
  const std::uint64_t done_now = done_.fetch_add(n, std::memory_order_relaxed) + n;
  if (!progress_enabled()) return;
  const auto now = static_cast<std::int64_t>(trace_now_ns());
  std::int64_t due = next_print_ns_.load(std::memory_order_relaxed);
  if (now < due) return;
  // One thread wins the right to print this interval's line.
  if (!next_print_ns_.compare_exchange_strong(due, now + kPrintIntervalNs,
                                              std::memory_order_relaxed)) {
    return;
  }
  print_line(done_now, /*final=*/false);
}

void ProgressMeter::seed_restored(std::uint64_t n) {
  restored_.fetch_add(n, std::memory_order_relaxed);
  done_.fetch_add(n, std::memory_order_relaxed);
}

void ProgressMeter::finish() {
  if (!progress_enabled()) return;
  const std::uint64_t done_now = done_.load(std::memory_order_relaxed);
  if (done_now == 0) return;
  print_line(done_now, /*final=*/true);
}

void ProgressMeter::print_line(std::uint64_t done_now, bool final) {
  const std::lock_guard<std::mutex> lock{print_mutex_};
  const double elapsed =
      static_cast<double>(trace_now_ns() - start_ns_) / 1e9;
  char eta[32] = "";
  // Rate (and thus ETA) is computed from units done *this run*: restored
  // checkpoint blocks count toward done/percent but took no time here, and
  // crediting them would skew the ETA toward zero right after a resume.
  const std::uint64_t restored = restored_.load(std::memory_order_relaxed);
  const std::uint64_t live = done_now > restored ? done_now - restored : 0;
  if (!final && total_ > 0 && live > 0 && done_now < total_) {
    const double rate = static_cast<double>(live) / elapsed;
    std::snprintf(eta, sizeof eta, " eta %.1fs",
                  static_cast<double>(total_ - done_now) / rate);
  }
  if (total_ > 0) {
    std::fprintf(stderr, "[%s] %llu/%llu (%.0f%%) %.1fs%s\n", label_.c_str(),
                 static_cast<unsigned long long>(done_now),
                 static_cast<unsigned long long>(total_),
                 100.0 * static_cast<double>(done_now) / static_cast<double>(total_),
                 elapsed, eta);
  } else {
    std::fprintf(stderr, "[%s] %llu %.1fs\n", label_.c_str(),
                 static_cast<unsigned long long>(done_now), elapsed);
  }
}

}  // namespace socmix::obs
