// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms cheap enough for the measurement pipeline's hot paths.
//
// Design constraints, in order:
//  1. Hot-path cost. A Counter::add is one relaxed fetch_add on a
//     cache-line-padded shard picked by the calling thread, so concurrent
//     writers from the util::parallel pool never contend on a line. A
//     Histogram::observe is three relaxed atomic adds (bucket, count, sum).
//  2. Snapshot-while-updating safety. All cells are std::atomic; snapshot()
//     reads them with relaxed loads, so a snapshot taken mid-run is a
//     well-defined (if slightly torn across metrics) view and TSan-clean.
//  3. Registration is cold. Handles are looked up by name under a mutex
//     once (call sites cache them in a function-local static — see the
//     SOCMIX_COUNTER_ADD family in obs.hpp) and stay valid for the process
//     lifetime; the registry never deallocates cells.
//
// This layer sits *below* util (util::parallel is itself instrumented), so
// it depends on nothing but the standard library.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace socmix::obs {

namespace detail {

/// Shards per metric. 16 covers the pool widths the repo targets without
/// bloating snapshot cost; threads hash onto shards, so occasional sharing
/// only costs a contended add, never a torn value.
inline constexpr std::size_t kShards = 16;

/// One cache line per shard so concurrent writers never false-share.
struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

/// Index of the calling thread's shard (stable per thread).
[[nodiscard]] std::size_t shard_index() noexcept;

struct CounterData {
  std::string name;
  CounterCell cells[kShards];
};

struct GaugeData {
  std::string name;
  std::atomic<double> value{0.0};
};

struct alignas(64) HistogramShard {
  /// counts[i] tallies observations <= bounds[i]; the last slot is the
  /// overflow bucket (> bounds.back()).
  std::vector<std::atomic<std::uint64_t>> counts;
  std::atomic<double> sum{0.0};
  std::atomic<std::uint64_t> count{0};
};

struct HistogramData {
  std::string name;
  std::vector<double> bounds;  ///< ascending upper bounds
  std::vector<HistogramShard> shards;
};

}  // namespace detail

/// Monotonic event tally. Copyable handle; all copies share storage.
class Counter {
 public:
  void add(std::uint64_t n = 1) const noexcept {
    data_->cells[detail::shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over shards (relaxed; exact once writers have quiesced).
  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  friend class Registry;
  explicit Counter(detail::CounterData* data) noexcept : data_(data) {}
  detail::CounterData* data_;
};

/// Last-write-wins scalar (iteration counts, residuals, phase seconds).
class Gauge {
 public:
  void set(double v) const noexcept { data_->value.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return data_->value.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeData* data) noexcept : data_(data) {}
  detail::GaugeData* data_;
};

/// Fixed-bucket histogram; bucket i counts observations <= bounds[i], the
/// implicit last bucket counts the overflow.
class Histogram {
 public:
  void observe(double v) const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  /// Summed per-bucket counts, length bounds().size() + 1.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return data_->bounds;
  }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramData* data) noexcept : data_(data) {}
  detail::HistogramData* data_;
};

/// Exponential seconds buckets 1us .. ~100s, the default for phase/kernel
/// timings.
[[nodiscard]] std::span<const double> time_bounds() noexcept;

/// Point-in-time view of every registered metric.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeSample {
    std::string name;
    double value;
  };
  struct HistogramSample {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
    std::uint64_t count;
    double sum;

    /// Quantile estimate (q in [0,1]) by linear interpolation inside the
    /// bucket holding rank q*count. The first bucket interpolates from a
    /// lower edge of 0 (all metric domains here are non-negative); the
    /// overflow bucket has no upper edge and clamps to bounds.back().
    /// Returns 0 for an empty histogram.
    [[nodiscard]] double quantile(double q) const noexcept;
  };

  struct ProvenanceEntry {
    std::string key;
    std::string value;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  /// Environment stamp (timestamp, git, build_type, simd_tier, ...); filled
  /// by obs::stamp_provenance, empty on raw Registry::snapshot().
  std::vector<ProvenanceEntry> provenance;
};

/// Process-wide name -> metric table.
class Registry {
 public:
  [[nodiscard]] static Registry& instance();

  /// Returns the metric registered under `name`, creating it on first use.
  /// A name registered as one kind must not be requested as another
  /// (throws std::invalid_argument). Re-registering a histogram with
  /// different bounds also throws.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name, std::span<const double> bounds);

  /// Seconds-bucketed histogram with the default time_bounds().
  [[nodiscard]] Histogram time_histogram(std::string_view name) {
    return histogram(name, time_bounds());
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every value (names stay registered; handles stay valid).
  /// For tests and benchmark harnesses, not concurrent hot paths.
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  // deques: stable addresses for handed-out handles.
  std::deque<detail::CounterData> counters_;
  std::deque<detail::GaugeData> gauges_;
  std::deque<detail::HistogramData> histograms_;
  std::map<std::string, detail::CounterData*, std::less<>> counter_index_;
  std::map<std::string, detail::GaugeData*, std::less<>> gauge_index_;
  std::map<std::string, detail::HistogramData*, std::less<>> histogram_index_;
};

}  // namespace socmix::obs
