#include "obs/sampler.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstring>
#include <memory>
#include <sstream>
#include <string_view>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "obs/metrics.hpp"

namespace socmix::obs {

namespace {

/// Same escaping rules as the metrics exporter (ASCII names in practice).
std::string jsonl_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void append_json_double(std::string& out, double v) {
  if (v != v) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

struct ProcStats {
  std::uint64_t rss_kb = 0;
  std::uint64_t hwm_kb = 0;
  double utime_s = 0.0;
  double stime_s = 0.0;
};

ProcStats read_proc_stats() {
  ProcStats stats;
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    unsigned long long v = 0;
    int found = 0;
    while (found < 2 && std::fgets(line, sizeof line, f)) {
      if (std::sscanf(line, "VmRSS: %llu kB", &v) == 1) {
        stats.rss_kb = v;
        ++found;
      } else if (std::sscanf(line, "VmHWM: %llu kB", &v) == 1) {
        stats.hwm_kb = v;
        ++found;
      }
    }
    std::fclose(f);
  }
  if (std::FILE* f = std::fopen("/proc/self/stat", "r")) {
    char buf[1024];
    const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    // The comm field can contain spaces and parentheses; fields are
    // well-defined only after the LAST ')'. utime and stime are fields 14
    // and 15 (1-based), i.e. the 11th and 12th after comm.
    if (const char* p = std::strrchr(buf, ')')) {
      ++p;
      unsigned long long utime = 0, stime = 0;
      if (std::sscanf(p,
                      " %*c %*d %*d %*d %*d %*d %*u %*u %*u %*u %*u %llu %llu",
                      &utime, &stime) == 2) {
        const long hz = sysconf(_SC_CLK_TCK);
        const double tick = hz > 0 ? 1.0 / static_cast<double>(hz) : 0.0;
        stats.utime_s = static_cast<double>(utime) * tick;
        stats.stime_s = static_cast<double>(stime) * tick;
      }
    }
  }
#endif
  return stats;
}

std::mutex g_process_sampler_mutex;
std::unique_ptr<Sampler> g_process_sampler;

}  // namespace

Sampler::Sampler(SamplerOptions options) : options_(std::move(options)) {
  options_.interval_ms = std::max<std::uint64_t>(1, options_.interval_ms);
  file_ = std::fopen(options_.path.c_str(), "w");
  if (!file_) {
    std::fprintf(stderr, "obs: cannot open %s for sampling\n", options_.path.c_str());
    stopped_ = true;
    return;
  }
  ok_ = true;
  start_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { run(); });
}

Sampler::~Sampler() { stop(); }

void Sampler::stop() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (stopped_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stopped_ = true;
  }
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::uint64_t Sampler::samples_written() const noexcept {
  return samples_.load(std::memory_order_acquire);
}

void Sampler::run() {
  // Baseline sample at t~0 so consumers always have a starting point (its
  // deltas equal its totals).
  write_sample();
  std::unique_lock<std::mutex> lock{mutex_};
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms));
    if (stop_requested_) break;
    lock.unlock();
    write_sample();
    lock.lock();
  }
  lock.unlock();
  // Final sample after the stop signal: the line whose totals the final
  // metrics snapshot must dominate.
  write_sample();
}

void Sampler::write_sample() {
  const auto now = std::chrono::steady_clock::now();
  const auto t_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - start_).count();
  const MetricsSnapshot snap = Registry::instance().snapshot();
  const ProcStats proc = read_proc_stats();

  std::string line;
  line.reserve(512);
  char buf[64];
  std::snprintf(buf, sizeof buf,
                "{\"t_ms\":%lld,\"seq\":%" PRIu64 ",", static_cast<long long>(t_ms),
                seq_);
  line += buf;
  std::snprintf(buf, sizeof buf, "\"rss_kb\":%" PRIu64 ",\"hwm_kb\":%" PRIu64 ",",
                proc.rss_kb, proc.hwm_kb);
  line += buf;
  line += "\"utime_s\":";
  append_json_double(line, proc.utime_s);
  line += ",\"stime_s\":";
  append_json_double(line, proc.stime_s);

  line += ",\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    const auto& c = snap.counters[i];
    std::uint64_t& prev = prev_counters_[c.name];
    const std::uint64_t delta = c.value >= prev ? c.value - prev : 0;
    prev = c.value;
    if (i > 0) line += ",";
    line += "\"" + jsonl_escape(c.name) + "\":{\"total\":";
    std::snprintf(buf, sizeof buf, "%" PRIu64 ",\"delta\":%" PRIu64 "}", c.value, delta);
    line += buf;
  }
  line += "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) line += ",";
    line += "\"" + jsonl_escape(snap.gauges[i].name) + "\":";
    append_json_double(line, snap.gauges[i].value);
  }
  line += "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    std::uint64_t& prev = prev_hist_counts_[h.name];
    const std::uint64_t delta = h.count >= prev ? h.count - prev : 0;
    prev = h.count;
    if (i > 0) line += ",";
    line += "\"" + jsonl_escape(h.name) + "\":{\"count\":";
    std::snprintf(buf, sizeof buf, "%" PRIu64 ",\"delta\":%" PRIu64 ",\"sum\":", h.count,
                  delta);
    line += buf;
    append_json_double(line, h.sum);
    line += "}";
  }
  line += "}}\n";

  std::fputs(line.c_str(), file_);
  std::fflush(file_);
  ++seq_;
  samples_.fetch_add(1, std::memory_order_release);
}

void start_process_sampler(SamplerOptions options) {
  const std::lock_guard<std::mutex> lock{g_process_sampler_mutex};
  g_process_sampler.reset();  // stop any previous one first
  auto sampler = std::make_unique<Sampler>(std::move(options));
  if (sampler->ok()) g_process_sampler = std::move(sampler);
}

void stop_process_sampler() {
  std::unique_ptr<Sampler> sampler;
  {
    const std::lock_guard<std::mutex> lock{g_process_sampler_mutex};
    sampler = std::move(g_process_sampler);
  }
  // Destructor (outside the lock) stops and joins.
}

bool process_sampler_active() {
  const std::lock_guard<std::mutex> lock{g_process_sampler_mutex};
  return g_process_sampler != nullptr;
}

}  // namespace socmix::obs
