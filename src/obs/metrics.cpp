#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace socmix::obs {

namespace detail {

namespace {

/// Monotonically assigned thread slots; hashing onto shards keeps shard
/// choice stable per thread and spreads pool workers across lines.
std::atomic<std::size_t> g_next_thread_slot{0};

}  // namespace

std::size_t shard_index() noexcept {
  thread_local const std::size_t slot =
      g_next_thread_slot.fetch_add(1, std::memory_order_relaxed);
  return slot % kShards;
}

}  // namespace detail

std::uint64_t Counter::value() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& cell : data_->cells) sum += cell.value.load(std::memory_order_relaxed);
  return sum;
}

void Histogram::observe(double v) const noexcept {
  // Inclusive upper bounds (bucket i counts v <= bounds[i], Prometheus
  // "le" style), so lower_bound: first bound >= v.
  const auto& bounds = data_->bounds;
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
  detail::HistogramShard& shard = data_->shards[detail::shard_index()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : data_->shards) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const noexcept {
  double total = 0.0;
  for (const auto& shard : data_->shards) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(data_->bounds.size() + 1, 0);
  for (const auto& shard : data_->shards) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double MetricsSnapshot::HistogramSample::quantile(double q) const noexcept {
  if (count == 0 || counts.empty() || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, clamped into [1, count]).
  const double rank = std::max(1.0, q * static_cast<double>(count));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t prev = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds.size()) {
      // Overflow bucket: no upper edge to interpolate towards; the best
      // defensible point estimate is its lower edge.
      return bounds.back();
    }
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    const double in_bucket = static_cast<double>(counts[i]);
    const double position = (rank - static_cast<double>(prev)) / in_bucket;
    return lower + (upper - lower) * position;
  }
  return bounds.back();  // unreachable when counts sum to count
}

std::span<const double> time_bounds() noexcept {
  // 1us .. 100s, half-decade steps: wide enough for a prefetched SpMM sweep
  // and a full Lanczos solve alike.
  static constexpr std::array<double, 17> kBounds = {
      1e-6, 3.16e-6, 1e-5, 3.16e-5, 1e-4, 3.16e-4, 1e-3, 3.16e-3, 1e-2,
      3.16e-2, 1e-1, 3.16e-1, 1.0, 3.16, 10.0, 31.6, 100.0};
  return kBounds;
}

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // never destroyed: handles
                                               // outlive static teardown
  return *registry;
}

Counter Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (const auto it = counter_index_.find(name); it != counter_index_.end()) {
    return Counter{it->second};
  }
  if (gauge_index_.contains(name) || histogram_index_.contains(name)) {
    throw std::invalid_argument{"obs: '" + std::string{name} +
                                "' already registered as another metric kind"};
  }
  detail::CounterData& data = counters_.emplace_back();
  data.name = std::string{name};
  counter_index_.emplace(data.name, &data);
  return Counter{&data};
}

Gauge Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (const auto it = gauge_index_.find(name); it != gauge_index_.end()) {
    return Gauge{it->second};
  }
  if (counter_index_.contains(name) || histogram_index_.contains(name)) {
    throw std::invalid_argument{"obs: '" + std::string{name} +
                                "' already registered as another metric kind"};
  }
  detail::GaugeData& data = gauges_.emplace_back();
  data.name = std::string{name};
  gauge_index_.emplace(data.name, &data);
  return Gauge{&data};
}

Histogram Registry::histogram(std::string_view name, std::span<const double> bounds) {
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument{"obs: histogram bounds must be non-empty and ascending"};
  }
  const std::lock_guard<std::mutex> lock{mutex_};
  if (const auto it = histogram_index_.find(name); it != histogram_index_.end()) {
    if (it->second->bounds.size() != bounds.size() ||
        !std::equal(bounds.begin(), bounds.end(), it->second->bounds.begin())) {
      throw std::invalid_argument{"obs: histogram '" + std::string{name} +
                                  "' re-registered with different bounds"};
    }
    return Histogram{it->second};
  }
  if (counter_index_.contains(name) || gauge_index_.contains(name)) {
    throw std::invalid_argument{"obs: '" + std::string{name} +
                                "' already registered as another metric kind"};
  }
  detail::HistogramData& data = histograms_.emplace_back();
  data.name = std::string{name};
  data.bounds.assign(bounds.begin(), bounds.end());
  data.shards = std::vector<detail::HistogramShard>(detail::kShards);
  for (auto& shard : data.shards) {
    shard.counts = std::vector<std::atomic<std::uint64_t>>(bounds.size() + 1);
  }
  histogram_index_.emplace(data.name, &data);
  return Histogram{&data};
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  MetricsSnapshot snap;
  snap.counters.reserve(counter_index_.size());
  for (const auto& [name, data] : counter_index_) {
    snap.counters.push_back({name, Counter{data}.value()});
  }
  snap.gauges.reserve(gauge_index_.size());
  for (const auto& [name, data] : gauge_index_) {
    snap.gauges.push_back({name, Gauge{data}.value()});
  }
  snap.histograms.reserve(histogram_index_.size());
  for (const auto& [name, data] : histogram_index_) {
    const Histogram h{data};
    snap.histograms.push_back({name, data->bounds, h.bucket_counts(), h.count(), h.sum()});
  }
  return snap;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock{mutex_};
  for (auto& data : counters_) {
    for (auto& cell : data.cells) cell.value.store(0, std::memory_order_relaxed);
  }
  for (auto& data : gauges_) data.value.store(0.0, std::memory_order_relaxed);
  for (auto& data : histograms_) {
    for (auto& shard : data.shards) {
      for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
      shard.count.store(0, std::memory_order_relaxed);
      shard.sum.store(0.0, std::memory_order_relaxed);
    }
  }
}

}  // namespace socmix::obs
