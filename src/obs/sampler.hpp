// In-run time-series sampling of the metrics registry and /proc/self.
//
// A Sampler owns a background thread that wakes every interval_ms, takes a
// Registry snapshot plus process stats (VmRSS/VmHWM from /proc/self/status,
// user/sys CPU seconds from /proc/self/stat), and appends one JSON object
// per sample to a JSONL file:
//
//   {"t_ms":..,"seq":..,"rss_kb":..,"hwm_kb":..,"utime_s":..,"stime_s":..,
//    "counters":{"name":{"total":N,"delta":D}},
//    "gauges":{"name":V},
//    "histograms":{"name":{"count":N,"delta":D,"sum":S}}}
//
// Counters and histogram counts carry both the running total and the delta
// since the previous sample, so consumers get rates without differencing
// and monotonicity is directly checkable. Totals are monotone because the
// underlying sharded counters are add-only.
//
// Threading contract: every file write happens on the sampler thread —
// including the final sample, which the thread takes after seeing the stop
// flag and before exiting — so the output needs no write-side locking and
// the whole construct is TSan-clean (snapshots read relaxed atomics).
// stop() blocks until the thread has written that final line and joined,
// which is why obs::flush() stops the sampler before taking its own final
// snapshot: sampled totals can never exceed the snapshot that lands in
// --metrics-out.
//
// Wired to the CLI as --sample-out PATH [--sample-interval-ms N] via
// core::configure_observability; flush()/flush_on_exit() handle shutdown.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace socmix::obs {

struct SamplerOptions {
  std::string path;                ///< JSONL output file (truncated on open)
  std::uint64_t interval_ms = 100; ///< wake period; clamped to >= 1
};

class Sampler {
 public:
  /// Opens the output and starts the sampling thread. A path that cannot
  /// be opened leaves ok() false and starts nothing (stderr note).
  explicit Sampler(SamplerOptions options);

  /// Equivalent to stop().
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  [[nodiscard]] bool ok() const noexcept { return ok_; }

  /// Signals the thread, waits for it to write one final sample and exit,
  /// then closes the file. Idempotent; safe from any thread but the
  /// sampler's own.
  void stop();

  /// Samples written so far (including the final one after stop()).
  [[nodiscard]] std::uint64_t samples_written() const noexcept;

 private:
  void run();
  void write_sample();

  SamplerOptions options_;
  bool ok_ = false;
  std::FILE* file_ = nullptr;
  std::chrono::steady_clock::time_point start_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;

  std::atomic<std::uint64_t> samples_{0};
  // Previous totals for delta computation; touched only by the sampler
  // thread.
  std::map<std::string, std::uint64_t> prev_counters_;
  std::map<std::string, std::uint64_t> prev_hist_counts_;
  std::uint64_t seq_ = 0;

  std::thread thread_;
};

/// Starts the process-wide sampler (replacing any previous one). Called by
/// core::configure_observability when --sample-out is given.
void start_process_sampler(SamplerOptions options);

/// Stops and destroys the process-wide sampler; no-op when none is
/// running. Called by obs::flush() before it snapshots.
void stop_process_sampler();

/// True while the process-wide sampler is running.
[[nodiscard]] bool process_sampler_active();

}  // namespace socmix::obs
