#include "obs/trace.hpp"

#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace socmix::obs {

namespace {

/// Per-thread capacity: 64k events * 24 bytes = ~1.5 MB/thread worst case,
/// allocated lazily on the first recorded span.
constexpr std::size_t kThreadCapacity = 1 << 16;

std::atomic<bool> g_tracing_enabled{false};
std::atomic<std::uint64_t> g_dropped{0};

struct TraceEvent {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t end_ns;
};

/// One recording thread's buffer. Owned by the global table (not the
/// thread) so events survive thread exit and export can walk them. The
/// mutex serializes the owning thread's appends against export/clear.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct BufferTable {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

BufferTable& table() {
  static BufferTable* t = new BufferTable();  // leaked: see Registry::instance
  return *t;
}

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = owned.get();
    BufferTable& t = table();
    const std::lock_guard<std::mutex> lock{t.mutex};
    raw->tid = static_cast<std::uint32_t>(t.buffers.size());
    raw->events.reserve(kThreadCapacity);
    t.buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buffer;
}

std::chrono::steady_clock::time_point trace_epoch() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

void set_tracing_enabled(bool enabled) noexcept {
  if (enabled) (void)trace_epoch();  // pin the epoch before the first span
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool tracing_enabled() noexcept {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - trace_epoch())
                                        .count());
}

std::uint64_t trace_dropped_events() noexcept {
  return g_dropped.load(std::memory_order_relaxed);
}

namespace detail {

void record_span(const char* name, std::uint64_t start_ns, std::uint64_t end_ns) noexcept {
  ThreadBuffer& buffer = thread_buffer();
  const std::lock_guard<std::mutex> lock{buffer.mutex};
  if (buffer.events.size() >= kThreadCapacity) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events.push_back({name, start_ns, end_ns});
}

}  // namespace detail

void write_trace_json(std::ostream& out) {
  BufferTable& t = table();
  const std::lock_guard<std::mutex> table_lock{t.mutex};
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& buffer : t.buffers) {
    const std::lock_guard<std::mutex> lock{buffer->mutex};
    for (const TraceEvent& e : buffer->events) {
      if (!first) out << ",";
      first = false;
      // ts/dur are microseconds; keep sub-us precision with fractions.
      out << "{\"name\":\"" << e.name << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
          << buffer->tid << ",\"ts\":" << static_cast<double>(e.start_ns) / 1e3
          << ",\"dur\":" << static_cast<double>(e.end_ns - e.start_ns) / 1e3 << "}";
    }
  }
  out << "]}";
}

void clear_trace() {
  BufferTable& t = table();
  const std::lock_guard<std::mutex> table_lock{t.mutex};
  for (const auto& buffer : t.buffers) {
    const std::lock_guard<std::mutex> lock{buffer->mutex};
    buffer->events.clear();
  }
  g_dropped.store(0, std::memory_order_relaxed);
}

}  // namespace socmix::obs
