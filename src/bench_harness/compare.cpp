#include "bench_harness/compare.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "bench_harness/harness.hpp"
#include "util/string_util.hpp"

namespace socmix::bench {

namespace {

struct NamedMedian {
  std::string name;
  double median = 0.0;
};

std::vector<NamedMedian> medians_of(const Json& doc, const std::string& which) {
  const Json* schema = doc.find("schema");
  if (!schema) {
    throw std::runtime_error(which + ": missing \"schema\" field (not a BENCH artifact?)");
  }
  if (schema->as_string() != kSchema) {
    throw std::runtime_error(which + ": schema \"" + schema->as_string() +
                             "\" != expected \"" + kSchema + "\"");
  }
  const Json* entries = doc.find("entries");
  if (!entries) throw std::runtime_error(which + ": missing \"entries\" array");
  std::vector<NamedMedian> out;
  for (const Json& e : entries->elements()) {
    NamedMedian nm;
    nm.name = e.at("name").as_string();
    nm.median = e.at("median_s").as_number();
    out.push_back(std::move(nm));
  }
  return out;
}

std::string artifact_name(const Json& doc) {
  const Json* name = doc.find("name");
  return name ? name->as_string() : std::string{"(unnamed)"};
}

}  // namespace

std::size_t CompareReport::regressions() const {
  std::size_t n = 0;
  for (const auto& d : deltas) n += d.regressed ? 1 : 0;
  return n;
}

double parse_threshold(const std::string& text) {
  std::string body{util::trim(text)};
  bool percent = false;
  if (!body.empty() && body.back() == '%') {
    percent = true;
    body.pop_back();
  }
  const auto value = util::parse_f64(util::trim(body));
  if (!value || *value < 0.0) {
    throw std::runtime_error("bad threshold \"" + text + "\" (want e.g. 25%, 25, or 0.25)");
  }
  // Bare numbers > 1 read as percentages: "--threshold 25" means 25%.
  if (percent || *value > 1.0) return *value / 100.0;
  return *value;
}

CompareReport compare_artifacts(const Json& old_doc, const Json& new_doc,
                                const CompareOptions& options) {
  const auto old_entries = medians_of(old_doc, "baseline");
  const auto new_entries = medians_of(new_doc, "candidate");

  CompareReport report;
  report.old_name = artifact_name(old_doc);
  report.new_name = artifact_name(new_doc);

  for (const auto& o : old_entries) {
    const NamedMedian* match = nullptr;
    for (const auto& n : new_entries) {
      if (n.name == o.name) {
        match = &n;
        break;
      }
    }
    if (!match) {
      report.only_in_old.push_back(o.name);
      continue;
    }
    EntryDelta d;
    d.name = o.name;
    d.old_median = o.median;
    d.new_median = match->median;
    d.ratio = o.median > 0.0 ? match->median / o.median : 0.0;
    d.below_floor = o.median < options.min_seconds;
    d.regressed = !d.below_floor && o.median > 0.0 &&
                  match->median > o.median * (1.0 + options.threshold);
    report.deltas.push_back(std::move(d));
  }
  for (const auto& n : new_entries) {
    bool found = false;
    for (const auto& o : old_entries) {
      if (o.name == n.name) {
        found = true;
        break;
      }
    }
    if (!found) report.only_in_new.push_back(n.name);
  }

  if (report.deltas.empty()) {
    throw std::runtime_error("no common entries between baseline and candidate — "
                             "nothing to gate (wrong artifact pair?)");
  }
  // A required name is satisfied only by a *compared* entry (present on
  // both sides): an entry the candidate dropped, or one the baseline never
  // recorded, was not gated no matter what the warnings say. "name/" and
  // bare "name" both count as prefixes, so "--require sweep" covers every
  // sweep/... entry.
  for (const auto& want : options.require) {
    bool satisfied = false;
    for (const auto& d : report.deltas) {
      if (d.name == want || util::starts_with(d.name, want + "/")) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) report.missing_required.push_back(want);
  }
  return report;
}

CompareReport compare_files(const std::string& old_path, const std::string& new_path,
                            const CompareOptions& options) {
  const auto load = [](const std::string& path, const char* which) {
    std::ifstream in(path);
    if (!in) {
      throw std::runtime_error(std::string{which} + ": cannot open " + path);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return Json::parse(buf.str());
  };
  return compare_artifacts(load(old_path, "baseline"), load(new_path, "candidate"),
                           options);
}

void print_report(const CompareReport& report, const CompareOptions& options,
                  std::ostream& out) {
  char line[256];
  std::snprintf(line, sizeof line, "%-44s %12s %12s %8s  %s", "entry", "old median",
                "new median", "ratio", "verdict");
  out << line << '\n';
  for (const auto& d : report.deltas) {
    const char* verdict = d.regressed       ? "REGRESSED"
                          : d.below_floor   ? "ok (below noise floor)"
                          : d.ratio > 1.0   ? "ok"
                                            : "ok (faster)";
    std::snprintf(line, sizeof line, "%-44s %10.4gs %10.4gs %8.3f  %s", d.name.c_str(),
                  d.old_median, d.new_median, d.ratio, verdict);
    out << line << '\n';
  }
  for (const auto& name : report.only_in_old) {
    out << "warning: entry \"" << name << "\" only in baseline (CPU tier mismatch?)\n";
  }
  for (const auto& name : report.only_in_new) {
    out << "warning: entry \"" << name << "\" only in candidate (new bench?)\n";
  }
  for (const auto& name : report.missing_required) {
    out << "MISSING REQUIRED: \"" << name
        << "\" was not compared (dropped entry or truncated artifact)\n";
  }
  out << report.regressions() << " regression(s) at threshold "
      << options.threshold * 100.0 << "% (noise floor " << options.min_seconds << "s)\n";
}

}  // namespace socmix::bench
