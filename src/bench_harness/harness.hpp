// The benchmark harness: one way to time things, one artifact format.
//
// Every bench in this repo reports through a bench::Harness. A harness
// owns a set of named entries; each entry accumulates per-repeat wall
// times (and, when the kernel allows perf_event_open, per-repeat cycles /
// instructions / LLC-misses), and the harness serializes everything as a
// schema-versioned BENCH_<name>.json next to the legacy CSVs:
//
//   run(name, fn, opts)   warmup + N timed repeats of fn (the micro-bench
//                         shape; opts.repeats >= 5 for gate-able entries)
//   time_once(name, fn)   one timed repeat appended to `name` (for benches
//                         with their own pairing/interleaving discipline —
//                         micro_frontier's paired rounds — that still want
//                         per-repeat counters and harness stats)
//   record(name, s)       append an externally timed sample (the figure
//                         benches' phase seconds, measured by the code
//                         under measurement itself)
//
// Statistics are robust by design: the reported center is the median, the
// spread is the MAD (median absolute deviation), and the minimum is kept
// as the "best case absent interference" number the previous ad-hoc
// benches reported. Means and variances are deliberately absent — one
// co-tenant burst on a shared runner poisons them.
//
// The process harness (Harness::process()) is the instance library code
// records into: core::measure_mixing reports its phase seconds there, so
// any driver that called configure_process() (every bench does, via
// ExperimentConfig::from_cli or explicitly) gets a BENCH json for free.
// Unconfigured processes (tests, the CLI without --bench-out) accumulate
// into an inert harness that is never written.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_harness/perf.hpp"
#include "bench_harness/provenance.hpp"

namespace socmix::util {
class Cli;
}

namespace socmix::bench {

/// Bumped whenever a field changes meaning; consumers (bench_compare, CI)
/// refuse mismatched schemas rather than misreading them.
inline constexpr const char* kSchema = "socmix-bench/1";

struct RunOptions {
  std::size_t warmup = 1;
  std::size_t repeats = 5;
  /// Work items per repeat (lane-edge updates, admitted queries, ...);
  /// 0 = not a throughput entry. Serialized so items/s can be derived.
  double items_per_repeat = 0.0;
};

/// Robust summary of a sample vector.
struct Stats {
  double median = 0.0;
  double min = 0.0;
  double mad = 0.0;  ///< median of |x_i - median|
};

[[nodiscard]] Stats robust_stats(std::span<const double> samples);

struct Entry {
  std::string name;
  std::size_t warmup = 0;
  double items_per_repeat = 0.0;
  std::vector<double> seconds;       ///< one element per repeat
  std::vector<PerfSample> counters;  ///< parallel to `seconds` when captured
  std::uint64_t peak_rss_kb = 0;     ///< process VmHWM after the last repeat

  [[nodiscard]] Stats stats() const { return robust_stats(seconds); }
};

class Harness {
 public:
  explicit Harness(std::string name);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name);

  /// Records a provenance flag (reorder/frontier/precision/scale/...).
  void set_flag(std::string key, std::string value);

  /// Disables per-repeat counter capture (the obs-overhead control arm
  /// and tests of the fallback path).
  void set_counters_enabled(bool enabled) noexcept { counters_enabled_ = enabled; }

  /// Times fn() once (counters + RSS bracketed around it), appends the
  /// sample to `name`, returns elapsed seconds.
  double time_once(const std::string& name, const std::function<void()>& fn);

  /// Warmup + repeats timed runs of fn(); returns the finished entry.
  const Entry& run(const std::string& name, const std::function<void()>& fn,
                   const RunOptions& options = {});

  /// Appends an externally timed sample to `name`.
  void record(const std::string& name, double seconds);

  /// Sets the throughput denominator of `name` (creates the entry).
  void set_items(const std::string& name, double items_per_repeat);

  [[nodiscard]] const Entry* find(const std::string& name) const;
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Serializes the artifact (schema, provenance incl. flags, entries
  /// with raw samples + median/min/MAD + counters when captured).
  void write_json(std::ostream& out) const;

  /// Writes to `path`, or to bench_results/BENCH_<name>.json when empty.
  /// Returns false (with a stderr note) when nothing could be written;
  /// never throws — bench artifacts are best-effort like the CSVs.
  bool write(const std::string& path = {}) const;

  /// The process-wide harness library code records into.
  [[nodiscard]] static Harness& process();

  /// Names the process harness (basename of cli.program() unless
  /// --bench-name overrides), honors --bench-out PATH and
  /// --bench-repeats N (min 1; read via process_repeats()), and registers
  /// an atexit hook that writes the artifact if any entry was recorded.
  static void configure_process(const util::Cli& cli);

  /// Explicit-name variant for drivers without a Cli.
  static void configure_process(std::string name);

  /// Default repeat count for process-harness benches; --bench-repeats
  /// (min taken with 5 is NOT applied — callers own their floor).
  [[nodiscard]] static std::size_t process_repeats(std::size_t fallback = 5);

 private:
  Entry& entry_locked(const std::string& name);

  std::string name_;
  bool counters_enabled_ = true;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::vector<std::pair<std::string, std::string>> flags_;
};

/// Process peak RSS (VmHWM) in kB from /proc/self/status; 0 if unreadable.
[[nodiscard]] std::uint64_t peak_rss_kb() noexcept;

}  // namespace socmix::bench
