#include "bench_harness/provenance.hpp"

#include <cstdlib>
#include <ctime>
#include <string>

#include "linalg/simd/kernels.hpp"
#include "obs/export.hpp"
#include "util/parallel.hpp"

#ifndef SOCMIX_GIT_DESCRIBE
#define SOCMIX_GIT_DESCRIBE "unknown"
#endif
#ifndef SOCMIX_BUILD_TYPE
#define SOCMIX_BUILD_TYPE "unknown"
#endif
#ifndef SOCMIX_COMPILER_ID
#define SOCMIX_COMPILER_ID "unknown"
#endif

namespace socmix::bench {

namespace {

// The configure-time describe can still come out "unknown" when the build
// was configured outside the checkout's history (tarball export, or a CI
// configure that ran before the env landed). GITHUB_SHA names the exact
// commit in any Actions job, so artifacts stay joinable in bench_compare
// either way.
std::string git_identity() {
  std::string git = SOCMIX_GIT_DESCRIBE;
  if (git == "unknown") {
    if (const char* sha = std::getenv("GITHUB_SHA"); sha != nullptr && *sha != '\0') {
      git = std::string{sha}.substr(0, 12);
    }
  }
  return git;
}

}  // namespace

std::string iso8601_utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

Provenance capture_provenance() {
  Provenance p;
  p.timestamp = iso8601_utc_now();
  p.git = git_identity();
  p.build_type = SOCMIX_BUILD_TYPE;
  p.compiler = SOCMIX_COMPILER_ID;
  p.simd_tier = linalg::simd::tier_name(linalg::simd::active_tier());
  p.threads = util::thread_count();
  return p;
}

void apply_metrics_provenance() {
  obs::set_provenance_entry("git", git_identity());
  obs::set_provenance_entry("build_type", SOCMIX_BUILD_TYPE);
  obs::set_provenance_entry("compiler", SOCMIX_COMPILER_ID);
  obs::set_provenance_entry("simd_tier",
                            linalg::simd::tier_name(linalg::simd::active_tier()));
}

}  // namespace socmix::bench
