#include "bench_harness/provenance.hpp"

#include <ctime>

#include "linalg/simd/kernels.hpp"
#include "obs/export.hpp"
#include "util/parallel.hpp"

#ifndef SOCMIX_GIT_DESCRIBE
#define SOCMIX_GIT_DESCRIBE "unknown"
#endif
#ifndef SOCMIX_BUILD_TYPE
#define SOCMIX_BUILD_TYPE "unknown"
#endif
#ifndef SOCMIX_COMPILER_ID
#define SOCMIX_COMPILER_ID "unknown"
#endif

namespace socmix::bench {

std::string iso8601_utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

Provenance capture_provenance() {
  Provenance p;
  p.timestamp = iso8601_utc_now();
  p.git = SOCMIX_GIT_DESCRIBE;
  p.build_type = SOCMIX_BUILD_TYPE;
  p.compiler = SOCMIX_COMPILER_ID;
  p.simd_tier = linalg::simd::tier_name(linalg::simd::active_tier());
  p.threads = util::thread_count();
  return p;
}

void apply_metrics_provenance() {
  obs::set_provenance_entry("git", SOCMIX_GIT_DESCRIBE);
  obs::set_provenance_entry("build_type", SOCMIX_BUILD_TYPE);
  obs::set_provenance_entry("compiler", SOCMIX_COMPILER_ID);
  obs::set_provenance_entry("simd_tier",
                            linalg::simd::tier_name(linalg::simd::active_tier()));
}

}  // namespace socmix::bench
