#include "bench_harness/harness.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "bench_harness/json.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace socmix::bench {

namespace {

double median_of(std::vector<double> values) {
  const std::size_t n = values.size();
  const std::size_t mid = n / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  const double upper = values[mid];
  if (n % 2 == 1) return upper;
  const double lower = *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lower + upper);
}

}  // namespace

Stats robust_stats(std::span<const double> samples) {
  Stats s;
  if (samples.empty()) return s;
  std::vector<double> values(samples.begin(), samples.end());
  s.min = *std::min_element(values.begin(), values.end());
  s.median = median_of(values);
  std::vector<double> dev;
  dev.reserve(values.size());
  for (const double v : values) dev.push_back(std::abs(v - s.median));
  s.mad = median_of(std::move(dev));
  return s;
}

std::uint64_t peak_rss_kb() noexcept {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  unsigned long long kb = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return static_cast<std::uint64_t>(kb);
#else
  return 0;
#endif
}

Harness::Harness(std::string name) : name_(std::move(name)) {}

void Harness::set_name(std::string name) {
  const std::lock_guard lock(mutex_);
  name_ = std::move(name);
}

void Harness::set_flag(std::string key, std::string value) {
  const std::lock_guard lock(mutex_);
  for (auto& [k, v] : flags_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  flags_.emplace_back(std::move(key), std::move(value));
}

Entry& Harness::entry_locked(const std::string& name) {
  for (auto& e : entries_) {
    if (e.name == name) return e;
  }
  entries_.emplace_back();
  entries_.back().name = name;
  return entries_.back();
}

double Harness::time_once(const std::string& name, const std::function<void()>& fn) {
  // One PerfGroup per thread: fds are opened once, then reset per region.
  // perf_event fds are calling-thread scoped, so thread_local matches the
  // measurement scope exactly.
  static thread_local PerfGroup perf;
  const bool counters = counters_enabled_ && perf.available();

  util::Timer timer;
  if (counters) perf.start();
  fn();
  PerfSample sample;
  if (counters) sample = perf.stop();
  const double elapsed = timer.seconds();

  const std::lock_guard lock(mutex_);
  Entry& entry = entry_locked(name);
  entry.seconds.push_back(elapsed);
  if (counters) {
    // Keep counters parallel to seconds even if earlier repeats lacked them
    // (counter capture toggled mid-entry never happens in practice, but the
    // invariant must hold for serialization).
    entry.counters.resize(entry.seconds.size() - 1);
    entry.counters.push_back(sample);
  } else if (!entry.counters.empty()) {
    entry.counters.resize(entry.seconds.size());
  }
  entry.peak_rss_kb = peak_rss_kb();
  return elapsed;
}

const Entry& Harness::run(const std::string& name, const std::function<void()>& fn,
                          const RunOptions& options) {
  for (std::size_t i = 0; i < options.warmup; ++i) fn();
  const std::size_t repeats = std::max<std::size_t>(1, options.repeats);
  for (std::size_t i = 0; i < repeats; ++i) time_once(name, fn);
  const std::lock_guard lock(mutex_);
  Entry& entry = entry_locked(name);
  entry.warmup = options.warmup;
  if (options.items_per_repeat > 0.0) entry.items_per_repeat = options.items_per_repeat;
  return entry;
}

void Harness::record(const std::string& name, double seconds) {
  const std::lock_guard lock(mutex_);
  Entry& entry = entry_locked(name);
  entry.seconds.push_back(seconds);
  if (!entry.counters.empty()) entry.counters.resize(entry.seconds.size());
  entry.peak_rss_kb = peak_rss_kb();
}

void Harness::set_items(const std::string& name, double items_per_repeat) {
  const std::lock_guard lock(mutex_);
  entry_locked(name).items_per_repeat = items_per_repeat;
}

const Entry* Harness::find(const std::string& name) const {
  const std::lock_guard lock(mutex_);
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

void Harness::write_json(std::ostream& out) const {
  const std::lock_guard lock(mutex_);
  const Provenance prov = capture_provenance();

  Json root = Json::object();
  root.set("schema", kSchema);
  root.set("name", name_);

  Json provenance = Json::object();
  provenance.set("timestamp", prov.timestamp);
  provenance.set("git", prov.git);
  provenance.set("build_type", prov.build_type);
  provenance.set("compiler", prov.compiler);
  provenance.set("simd_tier", prov.simd_tier);
  provenance.set("threads", prov.threads);
  Json flags = Json::object();
  for (const auto& [k, v] : flags_) flags.set(k, v);
  provenance.set("flags", std::move(flags));
  root.set("provenance", std::move(provenance));

  Json entries = Json::array();
  for (const auto& e : entries_) {
    Json entry = Json::object();
    entry.set("name", e.name);
    entry.set("warmup", static_cast<std::uint64_t>(e.warmup));
    entry.set("repeats", static_cast<std::uint64_t>(e.seconds.size()));
    if (e.items_per_repeat > 0.0) entry.set("items_per_repeat", e.items_per_repeat);

    Json seconds = Json::array();
    for (const double s : e.seconds) seconds.push(s);
    entry.set("seconds", std::move(seconds));

    const Stats stats = e.stats();
    entry.set("median_s", stats.median);
    entry.set("min_s", stats.min);
    entry.set("mad_s", stats.mad);

    bool any_counter = false;
    for (const auto& c : e.counters) any_counter = any_counter || c.any();
    if (any_counter) {
      Json counters = Json::array();
      for (const auto& c : e.counters) {
        Json sample = Json::object();
        if (c.cycles) sample.set("cycles", *c.cycles);
        if (c.instructions) sample.set("instructions", *c.instructions);
        if (c.llc_misses) sample.set("llc_misses", *c.llc_misses);
        counters.push(std::move(sample));
      }
      entry.set("counters", std::move(counters));
    }

    if (e.peak_rss_kb > 0) entry.set("peak_rss_kb", e.peak_rss_kb);
    entries.push(std::move(entry));
  }
  root.set("entries", std::move(entries));

  root.write(out);
  out << '\n';
}

bool Harness::write(const std::string& path) const {
  std::string target = path;
  if (target.empty()) {
    const auto dir = util::bench_results_dir();
    if (!dir) {
      std::fprintf(stderr, "[bench] bench_results/ not writable; BENCH_%s.json skipped\n",
                   name_.c_str());
      return false;
    }
    target = *dir + "/BENCH_" + util::slugify(name_) + ".json";
  }
  std::ofstream out(target);
  if (!out) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n", target.c_str());
    return false;
  }
  write_json(out);
  return out.good();
}

namespace {

// Process-harness configuration. Set once by configure_process before any
// recording; read by the atexit hook.
std::atomic<bool> g_process_configured{false};
std::string g_process_out;                   // empty = default path
std::size_t g_process_repeats = 0;           // 0 = caller fallback
std::atomic<bool> g_exit_hook_registered{false};

void write_process_harness_at_exit() {
  Harness& h = Harness::process();
  if (!g_process_configured.load(std::memory_order_acquire) || h.empty()) return;
  h.write(g_process_out);
}

std::string basename_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

Harness& Harness::process() {
  static Harness instance{"process"};
  return instance;
}

void Harness::configure_process(std::string name) {
  Harness& h = process();
  h.set_name(std::move(name));
  g_process_configured.store(true, std::memory_order_release);
  if (!g_exit_hook_registered.exchange(true)) {
    std::atexit(write_process_harness_at_exit);
  }
}

void Harness::configure_process(const util::Cli& cli) {
  std::string name = cli.get("bench-name", "");
  if (name.empty()) name = basename_of(cli.program());
  if (name.empty()) name = "bench";
  configure_process(std::move(name));
  g_process_out = cli.get("bench-out", "");
  const std::int64_t repeats = cli.get_i64("bench-repeats", 0);
  g_process_repeats = repeats > 0 ? static_cast<std::size_t>(repeats) : 0;
}

std::size_t Harness::process_repeats(std::size_t fallback) {
  return g_process_repeats > 0 ? g_process_repeats : fallback;
}

}  // namespace socmix::bench
