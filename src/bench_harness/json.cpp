#include "bench_harness/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace socmix::bench {

namespace {

[[noreturn]] void fail(std::string_view what, std::size_t offset) {
  throw JsonError{"json: " + std::string{what} + " at offset " + std::to_string(offset)};
}

/// Single-pass recursive-descent parser over the input view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage", pos_);
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'", pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json{parse_string()};
      case 't':
        if (consume_literal("true")) return Json{true};
        fail("bad literal", pos_);
      case 'f':
        if (consume_literal("false")) return Json{false};
        fail("bad literal", pos_);
      case 'n':
        if (consume_literal("null")) return Json{};
        fail("bad literal", pos_);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape", pos_);
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape", pos_);
          }
          // The schema's strings are ASCII; encode BMP code points as UTF-8
          // without surrogate-pair handling (sufficient for our escapes).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail("bad escape", pos_ - 1);
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token{text_.substr(start, pos_ - start)};
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') fail("bad number", start);
    return Json{v};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

double Json::as_number() const {
  if (kind_ != Kind::kNumber) throw JsonError{"json: value is not a number"};
  return number_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) throw JsonError{"json: value is not a string"};
  return string_;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) throw JsonError{"json: value is not a bool"};
  return bool_;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* value = find(key);
  if (value == nullptr) throw JsonError{"json: missing key '" + std::string{key} + "'"};
  return *value;
}

Json& Json::set(std::string key, Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) throw JsonError{"json: set() on non-object"};
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

std::size_t Json::size() const noexcept {
  if (kind_ == Kind::kArray) return elements_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  if (kind_ != Kind::kArray) throw JsonError{"json: indexing a non-array"};
  if (index >= elements_.size()) throw JsonError{"json: index out of range"};
  return elements_[index];
}

Json& Json::push(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) throw JsonError{"json: push() on non-array"};
  elements_.push_back(std::move(value));
  return *this;
}

Json Json::parse(std::string_view text) { return Parser{text}.parse_document(); }

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void Json::write(std::ostream& out) const {
  switch (kind_) {
    case Kind::kNull: out << "null"; break;
    case Kind::kBool: out << (bool_ ? "true" : "false"); break;
    case Kind::kNumber: out << json_number(number_); break;
    case Kind::kString: out << '"' << json_escape(string_) << '"'; break;
    case Kind::kArray: {
      out << '[';
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) out << ',';
        elements_[i].write(out);
      }
      out << ']';
      break;
    }
    case Kind::kObject: {
      out << '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out << ',';
        out << '"' << json_escape(members_[i].first) << "\":";
        members_[i].second.write(out);
      }
      out << '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

}  // namespace socmix::bench
