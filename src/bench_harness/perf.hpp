// Hardware counter capture via perf_event_open, with graceful fallback.
//
// A PerfGroup opens three counters on the calling thread — CPU cycles,
// retired instructions, and last-level-cache misses — and brackets a timed
// region with start()/stop(). Counters are read with the kernel's
// TIME_ENABLED/TIME_RUNNING scaling so multiplexed values are corrected.
//
// Fallback semantics: perf_event_open is frequently unavailable
// (containers without CAP_PERFMON, perf_event_paranoid >= 3, kernels
// compiled without PMU support, some VMs without an LLC event). Each
// counter degrades independently — whatever opened is reported, whatever
// failed is simply absent — and a PerfGroup with nothing open is a valid,
// zero-cost object whose samples report no values. Benchmarks therefore
// never fail, and BENCH_*.json omits the counters block when the kernel
// says no.
//
// Scope: the calling thread only (pid=0, no inherit). Counter capture is
// intended for the single-threaded kernel micro-benchmarks where
// cycles/instructions/LLC-misses are attributable; multi-threaded
// sections would need per-thread events, and wall-clock stats remain the
// regression-gate currency there.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace socmix::bench {

/// One region's counter readings; a field is nullopt when its event could
/// not be opened (or the kernel reported zero running time).
struct PerfSample {
  std::optional<std::uint64_t> cycles;
  std::optional<std::uint64_t> instructions;
  std::optional<std::uint64_t> llc_misses;

  [[nodiscard]] bool any() const noexcept {
    return cycles.has_value() || instructions.has_value() || llc_misses.has_value();
  }
};

class PerfGroup {
 public:
  /// Opens whatever events the kernel permits; never throws.
  PerfGroup();
  ~PerfGroup();

  PerfGroup(const PerfGroup&) = delete;
  PerfGroup& operator=(const PerfGroup&) = delete;

  /// True when at least one event opened.
  [[nodiscard]] bool available() const noexcept;

  /// Human-readable reason when available() is false ("perf_event_open:
  /// Permission denied", "unsupported platform", ...).
  [[nodiscard]] const std::string& unavailable_reason() const noexcept {
    return reason_;
  }

  /// Resets and enables all open events.
  void start() noexcept;

  /// Disables and reads all open events (multiplex-scaled).
  [[nodiscard]] PerfSample stop() noexcept;

 private:
  int fds_[3] = {-1, -1, -1};  ///< cycles, instructions, llc-misses
  std::string reason_;
};

}  // namespace socmix::bench
