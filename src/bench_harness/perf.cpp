#include "bench_harness/perf.hpp"

#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace socmix::bench {

#if defined(__linux__)

namespace {

int open_event(std::uint32_t type, std::uint64_t config) noexcept {
  perf_event_attr attr{};
  attr.type = type;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // user-space cycles; also lowers the required privilege
  attr.exclude_hv = 1;
  // TIME_ENABLED/TIME_RUNNING let us scale away PMU multiplexing when more
  // counters are open than the hardware has slots for.
  attr.read_format = PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
              /*group_fd=*/-1, /*flags=*/0));
}

std::optional<std::uint64_t> read_scaled(int fd) noexcept {
  if (fd < 0) return std::nullopt;
  struct {
    std::uint64_t value;
    std::uint64_t time_enabled;
    std::uint64_t time_running;
  } data{};
  if (read(fd, &data, sizeof data) != static_cast<ssize_t>(sizeof data)) {
    return std::nullopt;
  }
  if (data.time_running == 0) {
    // Never scheduled onto the PMU: no measurement, not a zero.
    return data.value == 0 ? std::nullopt : std::optional{data.value};
  }
  if (data.time_running >= data.time_enabled) return data.value;
  const long double scale = static_cast<long double>(data.time_enabled) /
                            static_cast<long double>(data.time_running);
  return static_cast<std::uint64_t>(static_cast<long double>(data.value) * scale);
}

}  // namespace

PerfGroup::PerfGroup() {
  fds_[0] = open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  if (fds_[0] < 0) {
    reason_ = std::string{"perf_event_open: "} + std::strerror(errno);
  }
  fds_[1] = open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  // HW_CACHE_MISSES maps to last-level-cache misses on every perf_event
  // implementation we target; it is also the event most often missing
  // (VMs without an LLC PMU), hence the independent fallback.
  fds_[2] = open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
  if (!available() && reason_.empty()) {
    reason_ = std::string{"perf_event_open: "} + std::strerror(errno);
  }
}

PerfGroup::~PerfGroup() {
  for (const int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

bool PerfGroup::available() const noexcept {
  return fds_[0] >= 0 || fds_[1] >= 0 || fds_[2] >= 0;
}

void PerfGroup::start() noexcept {
  for (const int fd : fds_) {
    if (fd >= 0) {
      ioctl(fd, PERF_EVENT_IOC_RESET, 0);
      ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
    }
  }
}

PerfSample PerfGroup::stop() noexcept {
  for (const int fd : fds_) {
    if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  }
  PerfSample sample;
  sample.cycles = read_scaled(fds_[0]);
  sample.instructions = read_scaled(fds_[1]);
  sample.llc_misses = read_scaled(fds_[2]);
  return sample;
}

#else  // !__linux__

PerfGroup::PerfGroup() : reason_("unsupported platform (perf_event is Linux-only)") {}
PerfGroup::~PerfGroup() = default;
bool PerfGroup::available() const noexcept { return false; }
void PerfGroup::start() noexcept {}
PerfSample PerfGroup::stop() noexcept { return {}; }

#endif

}  // namespace socmix::bench
