// Environment provenance for benchmark artifacts and metrics snapshots.
//
// A perf number without its environment is a rumor: every BENCH_*.json
// carries the commit, compiler, build type, resolved SIMD tier, thread
// count, and the perf-relevant CLI flags the run executed under, so two
// artifacts are comparable exactly when their provenance says they are.
//
// Build facts (git describe, build type, compiler) are burned in at
// configure time via compile definitions on this library — see
// src/bench_harness/CMakeLists.txt. They go stale only between a commit
// and the next CMake configure, which CI never sees (fresh configure per
// run) and local use survives (the --dirty suffix flags uncommitted
// kernels either way).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace socmix::bench {

struct Provenance {
  std::string timestamp;   ///< ISO-8601 UTC wall clock at capture
  std::string git;         ///< `git describe --always --dirty` at configure
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  std::string compiler;    ///< compiler id + version
  std::string simd_tier;   ///< resolved linalg.simd tier (forces the probe)
  std::uint64_t threads = 0;  ///< util::parallel pool width at capture
  /// Perf-relevant run flags (reorder/frontier/precision/...), caller-set.
  std::vector<std::pair<std::string, std::string>> flags;
};

/// Captures everything except `flags` (which only the driver knows).
[[nodiscard]] Provenance capture_provenance();

/// ISO-8601 UTC wall-clock "now", e.g. "2026-08-07T14:03:22Z".
[[nodiscard]] std::string iso8601_utc_now();

/// Pushes the build/environment facts into the obs exporter's provenance
/// registry so every --metrics-out snapshot (JSON and CSV) is stamped with
/// git describe, build type, compiler, and the resolved SIMD tier.
/// Idempotent; called by core::configure_observability.
void apply_metrics_provenance();

}  // namespace socmix::bench
