// Comparison of two BENCH_*.json artifacts — the perf-regression gate.
//
// Entries are matched by name; each pair's median_s is compared and a
// relative slowdown above the threshold marks a regression. Entries whose
// baseline median is below the noise floor (min_seconds) are reported but
// never gated — a 2x ratio on a 20 µs kernel is scheduler jitter, not a
// regression. Entries present on only one side are warnings, not errors:
// a baseline recorded on an AVX-512 box legitimately has tier entries a
// SSE4 runner cannot reproduce.
//
// Schema errors (wrong/missing "schema" field, malformed JSON, no common
// entries at all) throw — the CI gate hard-fails on those even in
// advisory mode, because a gate that silently compares nothing is worse
// than no gate.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bench_harness/json.hpp"

namespace socmix::bench {

struct CompareOptions {
  /// Relative slowdown that counts as a regression: new > old * (1 + threshold).
  double threshold = 0.25;
  /// Baseline medians below this (seconds) are never gated.
  double min_seconds = 1e-4;
  /// Entry names (or "prefix/" groups) that MUST be compared on both
  /// sides. A required name with no matching delta is fatal even in
  /// advisory mode — it means the gate silently stopped covering an entry
  /// it was supposed to watch (bench dropped, artifact truncated, entry
  /// renamed), which the only-in-one-side warnings would let through.
  std::vector<std::string> require;
};

struct EntryDelta {
  std::string name;
  double old_median = 0.0;
  double new_median = 0.0;
  double ratio = 0.0;  ///< new / old (0 when old is 0)
  bool below_floor = false;
  bool regressed = false;
};

struct CompareReport {
  std::string old_name;
  std::string new_name;
  std::vector<EntryDelta> deltas;
  std::vector<std::string> only_in_old;
  std::vector<std::string> only_in_new;
  /// Required names (CompareOptions::require) matched by no delta.
  std::vector<std::string> missing_required;

  [[nodiscard]] std::size_t regressions() const;
};

/// Parses "25%", "25", or "0.25" into a fraction (0.25). Values > 1 are
/// treated as percentages. Throws std::runtime_error on garbage.
[[nodiscard]] double parse_threshold(const std::string& text);

/// Compares two parsed artifacts. Throws std::runtime_error on schema
/// mismatch or empty entry intersection.
[[nodiscard]] CompareReport compare_artifacts(const Json& old_doc, const Json& new_doc,
                                              const CompareOptions& options = {});

/// Loads and compares two artifact files. Throws std::runtime_error (IO)
/// or JsonError (parse) on failure.
[[nodiscard]] CompareReport compare_files(const std::string& old_path,
                                          const std::string& new_path,
                                          const CompareOptions& options = {});

/// Human-readable table of the report (one line per delta + warnings).
void print_report(const CompareReport& report, const CompareOptions& options,
                  std::ostream& out);

}  // namespace socmix::bench
