// Minimal JSON value model + recursive-descent parser for the benchmark
// subsystem.
//
// Scope: exactly what BENCH_*.json and the obs sampler's JSONL need —
// objects, arrays, strings, finite doubles, bools, null. The parser is
// strict (throws bench::JsonError on malformed input) because a bench
// artifact that fails to parse must fail the consumer loudly, never be
// silently skipped; the writer emits the same canonical form the rest of
// the repo's exporters use (17-significant-digit doubles, integral values
// without a decimal point, no NaN/Inf literals).
//
// This is deliberately not a general JSON library: no streaming, no
// comments, no duplicate-key detection. Object keys keep insertion order
// so written files diff cleanly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace socmix::bench {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One JSON value. Numbers are stored as double (the schema's counters and
/// timings all fit; exact u64 fidelity is not contractual here).
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() noexcept : kind_(Kind::kNull) {}
  Json(bool b) noexcept : kind_(Kind::kBool), bool_(b) {}  // NOLINT(google-explicit-constructor)
  Json(double v) noexcept : kind_(Kind::kNumber), number_(v) {}  // NOLINT
  Json(std::int64_t v) noexcept : kind_(Kind::kNumber), number_(static_cast<double>(v)) {}  // NOLINT
  Json(std::uint64_t v) noexcept : kind_(Kind::kNumber), number_(static_cast<double>(v)) {}  // NOLINT
  Json(std::string s) noexcept : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::kString), string_(s) {}  // NOLINT

  [[nodiscard]] static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  [[nodiscard]] static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }

  /// Typed accessors; throw JsonError on kind mismatch (schema violations
  /// surface as exceptions, not garbage values).
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] bool as_bool() const;

  // -- object access ------------------------------------------------------
  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  /// Member lookup; throws JsonError naming the missing key.
  [[nodiscard]] const Json& at(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const noexcept { return find(key) != nullptr; }
  /// Inserts or overwrites a member (value becomes/stays an object).
  Json& set(std::string key, Json value);
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const noexcept {
    return members_;
  }

  // -- array access -------------------------------------------------------
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] const Json& at(std::size_t index) const;
  /// Appends an element (value becomes/stays an array).
  Json& push(Json value);
  [[nodiscard]] const std::vector<Json>& elements() const noexcept { return elements_; }

  /// Parses a complete JSON document; throws JsonError with a byte offset
  /// on malformed input or trailing garbage.
  [[nodiscard]] static Json parse(std::string_view text);

  /// Serializes compactly (no whitespace). Integral numbers print without
  /// a decimal point; non-finite numbers as null.
  void write(std::ostream& out) const;
  [[nodiscard]] std::string dump() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// JSON string escaping shared by the writer and the obs sampler.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Canonical number formatting: integral values without a decimal point,
/// everything else with up to 17 significant digits; NaN/Inf become "null".
[[nodiscard]] std::string json_number(double v);

}  // namespace socmix::bench
