// Experiment harness shared by the figure/table benches.
//
// Centralizes what every reproduction binary needs: dataset construction
// at a CLI-chosen scale, the paper's epsilon and walk-length grids, and
// consistent emission of series as aligned text + CSV.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/measurement.hpp"
#include "gen/datasets.hpp"
#include "graph/frontier.hpp"
#include "graph/graph.hpp"
#include "graph/sharded/plan.hpp"
#include "linalg/shard_pipeline.hpp"
#include "linalg/simd/kernels.hpp"
#include "resilience/checkpoint.hpp"
#include "util/cli.hpp"

namespace socmix::core {

/// Scale/seed/source knobs common to all experiment drivers, parsed from
/// --scale, --sources, --steps, --seed, --threads.
struct ExperimentConfig {
  /// Multiplier on each dataset's default node count; 1.0 = bench default.
  /// The paper-scale run uses whatever reaches spec.paper_nodes.
  double scale = 1.0;
  std::size_t sources = 0;      ///< 0 = per-experiment default
  std::size_t max_steps = 0;    ///< 0 = per-experiment default
  std::uint64_t seed = 42;
  /// Worker threads for the parallel evolution/SpMV kernels; 0 defers to
  /// SOCMIX_THREADS, then hardware concurrency. Results are bit-identical
  /// for every value — this is purely a speed knob.
  std::size_t threads = 0;
  /// Checkpoint/resume for the long sweeps, parsed from --checkpoint-dir /
  /// --checkpoint-interval (dir empty = off). Drivers forward this into
  /// MeasurementOptions.checkpoint / AdmissionSweepConfig.checkpoint.
  resilience::CheckpointOptions checkpoint;
  /// Vertex ordering for the compute kernels, parsed from
  /// --reorder=rcm|degree|bfs|none (default none). Drivers forward this
  /// into MeasurementOptions.reorder / AdmissionSweepConfig.reorder.
  graph::ReorderMode reorder = graph::ReorderMode::kNone;
  /// Adaptive frontier phase of the evolution engine, parsed from
  /// --frontier=auto|off|<fraction> (default auto). Results are
  /// bit-identical on or off — this is purely a speed knob. Drivers
  /// forward this into MeasurementOptions.frontier /
  /// AdmissionSweepConfig.frontier.
  graph::FrontierPolicy frontier;
  /// Kernel precision, parsed from --precision=f64|mixed (default f64).
  /// f64 is the exact-parity path (bit-identical across threads, reorder,
  /// frontier, and simd tiers); mixed stores walk state as float32 with
  /// float64 compensated accumulation (see linalg/simd/kernels.hpp for
  /// the accuracy budget). Drivers forward this into
  /// MeasurementOptions.precision.
  linalg::simd::Precision precision = linalg::simd::Precision::kFloat64;
  /// Shard-at-a-time out-of-core evolution, parsed from
  /// --sharded=auto|off|N (default auto, which stays on the dense path
  /// until the CSR exceeds the per-shard byte budget). Results are
  /// bit-identical for every shard count — this trades sweep locality for
  /// a bounded CSR residency. Drivers forward this into
  /// MeasurementOptions.sharded / AdmissionSweepConfig.sharded.
  graph::ShardPolicy sharded;
  /// Shard window staging, parsed from --io-mode=sync|prefetch (default
  /// sync). Prefetch stages the next shard's CSR window (page-in, and
  /// ADJC decode for compressed containers) on a dedicated thread while
  /// the current shard computes. Results are bit-identical either way —
  /// purely an I/O latency knob. Drivers forward this into
  /// MeasurementOptions.io_mode.
  linalg::IoMode io_mode = linalg::IoMode::kSync;

  /// Parses the CLI and applies `threads` to the global util::parallel
  /// pool, so every driver honors --threads with no further wiring. Also
  /// calls configure_observability (--metrics-out / --trace-out /
  /// --progress) and configure_resilience (--checkpoint-dir /
  /// --checkpoint-interval / --fault-inject), so those flags work in
  /// every driver. Throws std::invalid_argument on an unknown --reorder
  /// value.
  [[nodiscard]] static ExperimentConfig from_cli(const util::Cli& cli);
};

/// Parses --reorder (default "none"); throws std::invalid_argument naming
/// the bad value and the accepted ones. Shared by from_cli and tools that
/// parse their own Cli (socmix measure/sybil).
[[nodiscard]] graph::ReorderMode reorder_from_cli(const util::Cli& cli);

/// Parses --frontier (default "auto"); throws std::invalid_argument naming
/// the bad value and the accepted ones. Shared by from_cli and tools that
/// parse their own Cli (socmix measure/sybil).
[[nodiscard]] graph::FrontierPolicy frontier_from_cli(const util::Cli& cli);

/// Parses --precision (default "f64"); throws std::invalid_argument naming
/// the bad value and the accepted ones. Shared by from_cli and tools that
/// parse their own Cli (socmix measure/sybil).
[[nodiscard]] linalg::simd::Precision precision_from_cli(const util::Cli& cli);

/// Parses --sharded (default "auto"); throws std::invalid_argument naming
/// the bad value and the accepted ones. Shared by from_cli and tools that
/// parse their own Cli (socmix measure/sybil, graph_pack).
[[nodiscard]] graph::ShardPolicy sharded_from_cli(const util::Cli& cli);

/// Parses --io-mode (default "sync"); throws std::invalid_argument naming
/// the bad value and the accepted ones. Shared by from_cli and tools that
/// parse their own Cli (socmix measure/sybil).
[[nodiscard]] linalg::IoMode io_mode_from_cli(const util::Cli& cli);

/// Wires the shared observability flags into the obs layer:
///   --metrics-out=PATH        metrics snapshot at exit (JSON; CSV if *.csv)
///   --trace-out=PATH          Chrome trace_event JSON of recorded spans
///   --sample-out=PATH         in-run JSONL time-series of the metrics
///                             registry + /proc/self (obs::Sampler)
///   --sample-interval-ms=N    sampling period (default 100)
///   --progress                coarse progress + ETA on stderr
/// Also stamps the metrics exporter with build provenance (git, build
/// type, compiler, SIMD tier) so every snapshot records its environment.
/// Registers the exit-time flush when any output is requested. Drivers that
/// go through ExperimentConfig::from_cli get this for free; tools that parse
/// their own Cli call it directly.
void configure_observability(const util::Cli& cli);

/// Wires the shared resilience flags:
///   --checkpoint-dir=DIR      snapshot completed sweep blocks into DIR
///   --checkpoint-interval=N   write every N completed blocks (default 8)
///   --fault-inject=SPEC       arm a deterministic fault (<site>:<nth>
///                             [:abort|:error]; see resilience/fault.hpp);
///                             the SOCMIX_FAULT env var is honored too,
///                             with the flag taking precedence
/// Returns the parsed checkpoint options. Drivers that go through
/// ExperimentConfig::from_cli get this for free.
[[nodiscard]] resilience::CheckpointOptions configure_resilience(const util::Cli& cli);

/// Builds a Table-1 stand-in at config.scale times its default size and
/// returns its largest connected component.
[[nodiscard]] graph::Graph build_scaled_dataset(const gen::DatasetSpec& spec,
                                                const ExperimentConfig& config);

/// The paper's epsilon grid for Figs 1-2 (log-spaced 0.25 .. 1e-4).
[[nodiscard]] std::vector<double> figure_epsilon_grid();

/// The paper's short walk lengths (Fig 3) and long walk lengths (Fig 4).
[[nodiscard]] std::vector<std::size_t> short_walk_lengths();
[[nodiscard]] std::vector<std::size_t> long_walk_lengths();

/// One named data series (a line in one of the paper's plots).
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Prints a family of series sharing an x-grid as one aligned text table
/// with the given x-column caption, and mirrors it to
/// bench_results/<csv_name>.csv when writable.
void emit_series(const std::string& title, const std::string& x_caption,
                 const std::vector<Series>& series, const std::string& csv_name);

/// Human-readable one-line summary of a report (used by several benches).
[[nodiscard]] std::string summarize(const MixingReport& report);

}  // namespace socmix::core
