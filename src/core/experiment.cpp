#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <stdexcept>

#include "bench_harness/harness.hpp"
#include "bench_harness/provenance.hpp"
#include "obs/export.hpp"
#include "obs/progress.hpp"
#include "obs/sampler.hpp"
#include "resilience/fault.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace socmix::core {

ExperimentConfig ExperimentConfig::from_cli(const util::Cli& cli) {
  ExperimentConfig config;
  config.scale = cli.get_f64("scale", 1.0);
  config.sources = static_cast<std::size_t>(cli.get_i64("sources", 0));
  config.max_steps = static_cast<std::size_t>(cli.get_i64("steps", 0));
  config.seed = static_cast<std::uint64_t>(cli.get_i64("seed", 42));
  config.threads = static_cast<std::size_t>(cli.get_i64("threads", 0));
  util::set_thread_count(config.threads);
  config.reorder = reorder_from_cli(cli);
  config.frontier = frontier_from_cli(cli);
  config.precision = precision_from_cli(cli);
  config.sharded = sharded_from_cli(cli);
  config.io_mode = io_mode_from_cli(cli);
  configure_observability(cli);
  config.checkpoint = configure_resilience(cli);
  // Stamp the perf-relevant knobs on the process bench harness so any
  // BENCH_*.json this driver emits records what it actually ran with.
  // (Recording flags on an unconfigured harness is inert.)
  bench::Harness& harness = bench::Harness::process();
  harness.set_flag("scale", cli.get("scale", "1"));
  harness.set_flag("threads", std::to_string(util::thread_count()));
  harness.set_flag("reorder", cli.get("reorder", "none"));
  harness.set_flag("frontier", cli.get("frontier", "auto"));
  harness.set_flag("precision", cli.get("precision", "f64"));
  harness.set_flag("sharded", cli.get("sharded", "auto"));
  harness.set_flag("io-mode", cli.get("io-mode", "sync"));
  return config;
}

graph::ReorderMode reorder_from_cli(const util::Cli& cli) {
  const std::string value = cli.get("reorder", "none");
  const auto mode = graph::parse_reorder_mode(value);
  if (!mode) {
    throw std::invalid_argument{"--reorder=" + value +
                                ": expected one of none, degree, rcm, bfs"};
  }
  return *mode;
}

graph::FrontierPolicy frontier_from_cli(const util::Cli& cli) {
  const std::string value = cli.get("frontier", "auto");
  const auto policy = graph::parse_frontier_policy(value);
  if (!policy) {
    throw std::invalid_argument{"--frontier=" + value +
                                ": expected auto, off, or a row fraction in (0, 1]"};
  }
  return *policy;
}

linalg::simd::Precision precision_from_cli(const util::Cli& cli) {
  const std::string value = cli.get("precision", "f64");
  const auto precision = linalg::simd::parse_precision(value);
  if (!precision) {
    throw std::invalid_argument{"--precision=" + value +
                                ": expected f64 or mixed"};
  }
  return *precision;
}

graph::ShardPolicy sharded_from_cli(const util::Cli& cli) {
  const std::string value = cli.get("sharded", "auto");
  const auto policy = graph::parse_shard_policy(value);
  if (!policy) {
    throw std::invalid_argument{
        "--sharded=" + value + ": expected auto, off, or a shard count in [1, " +
        std::to_string(graph::ShardPolicy::kMaxShards) + "]"};
  }
  return *policy;
}

linalg::IoMode io_mode_from_cli(const util::Cli& cli) {
  const std::string value = cli.get("io-mode", "sync");
  const auto mode = linalg::parse_io_mode(value);
  if (!mode) {
    throw std::invalid_argument{"--io-mode=" + value +
                                ": expected sync or prefetch"};
  }
  return *mode;
}

void configure_observability(const util::Cli& cli) {
  const std::string metrics = cli.get("metrics-out", "");
  const std::string trace = cli.get("trace-out", "");
  const std::string sample = cli.get("sample-out", "");
  obs::set_metrics_out(metrics);
  obs::set_trace_out(trace);
  obs::set_progress_enabled(cli.get_flag("progress"));
  // Every snapshot (JSON and CSV) carries git/build/compiler/simd-tier
  // provenance from here on; cheap, so unconditional.
  bench::apply_metrics_provenance();
  if (!sample.empty()) {
    obs::SamplerOptions options;
    options.path = sample;
    options.interval_ms = static_cast<std::uint64_t>(
        std::max<std::int64_t>(1, cli.get_i64("sample-interval-ms", 100)));
    obs::start_process_sampler(std::move(options));
  }
  if (!metrics.empty() || !trace.empty() || !sample.empty()) obs::flush_on_exit();
}

resilience::CheckpointOptions configure_resilience(const util::Cli& cli) {
  resilience::CheckpointOptions checkpoint;
  checkpoint.dir = cli.get("checkpoint-dir", "");
  checkpoint.interval =
      static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_i64("checkpoint-interval", 8)));
  resilience::configure_faults_from_env();
  const std::string fault = cli.get("fault-inject", "");
  if (!fault.empty()) resilience::arm_fault(fault);
  return checkpoint;
}

graph::Graph build_scaled_dataset(const gen::DatasetSpec& spec,
                                  const ExperimentConfig& config) {
  const auto nodes = static_cast<graph::NodeId>(
      std::max(64.0, config.scale * static_cast<double>(spec.default_nodes)));
  return gen::build_dataset(spec, nodes, config.seed);
}

std::vector<double> figure_epsilon_grid() {
  // Log-spaced from 0.25 down to 1e-4, ~4 points per decade, matching the
  // x-range of the paper's Figs 1-2.
  std::vector<double> grid;
  for (double eps = 0.25; eps >= 0.9e-4; eps /= 1.77827941) {  // 10^(1/4)
    grid.push_back(eps);
  }
  return grid;
}

std::vector<std::size_t> short_walk_lengths() { return {1, 5, 10, 20, 40}; }

std::vector<std::size_t> long_walk_lengths() { return {80, 100, 200, 300, 400, 500}; }

void emit_series(const std::string& title, const std::string& x_caption,
                 const std::vector<Series>& series, const std::string& csv_name) {
  std::cout << "\n== " << title << " ==\n";
  if (series.empty()) return;

  util::TextTable table;
  std::vector<std::string> header{x_caption};
  for (const Series& s : series) header.push_back(s.name);
  table.header(std::move(header));

  const std::size_t points = series.front().x.size();
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<std::string> row{util::fmt_auto(series.front().x[i])};
    for (const Series& s : series) {
      row.push_back(i < s.y.size() ? util::fmt_auto(s.y[i]) : "");
    }
    table.row(std::move(row));
  }
  table.print(std::cout);

  if (const auto dir = util::bench_results_dir()) {
    util::CsvWriter csv{*dir + "/" + csv_name + ".csv"};
    std::vector<std::string> head{x_caption};
    for (const Series& s : series) head.push_back(s.name);
    csv.row(head);
    for (std::size_t i = 0; i < points; ++i) {
      std::vector<std::string> row{util::fmt_sci(series.front().x[i], 6)};
      for (const Series& s : series) {
        row.push_back(i < s.y.size() ? util::fmt_sci(s.y[i], 6) : "");
      }
      csv.row(row);
    }
  }
}

std::string summarize(const MixingReport& report) {
  std::string out = report.name + ": n=" + util::with_commas(static_cast<std::int64_t>(report.nodes)) +
                    " m=" + util::with_commas(static_cast<std::int64_t>(report.edges));
  if (report.spectral_ran) {
    out += " mu=" + util::fmt_fixed(report.slem, 6) +
           " (lambda2=" + util::fmt_fixed(report.lambda2, 6) +
           ", lambda_min=" + util::fmt_fixed(report.lambda_min, 6) +
           ", iters=" + std::to_string(report.lanczos_iterations) +
           (report.spectral_converged ? "" : ", UNCONVERGED") + ")";
  }
  return out;
}

}  // namespace socmix::core
