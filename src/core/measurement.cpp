#include "core/measurement.hpp"

#include "linalg/walk_operator.hpp"
#include "util/rng.hpp"

namespace socmix::core {

MixingReport measure_mixing(const graph::Graph& g, std::string name,
                            const MeasurementOptions& options) {
  MixingReport report;
  report.name = std::move(name);
  report.nodes = g.num_nodes();
  report.edges = g.num_edges();

  if (options.spectral && g.num_nodes() > 0) {
    const linalg::WalkOperator op{g, options.laziness};
    const auto spectrum = linalg::slem_spectrum(op, options.lanczos);
    report.spectral_ran = true;
    report.spectral_converged = spectrum.converged;
    report.slem = spectrum.slem;
    report.lambda2 = spectrum.lambda2;
    report.lambda_min = spectrum.lambda_min;
    report.lanczos_iterations = spectrum.iterations;
  }

  if (options.sampled && g.num_nodes() > 0 &&
      (options.sources > 0 || options.all_sources)) {
    util::Rng rng{options.seed};
    const auto sources = options.all_sources
                             ? markov::all_sources(g)
                             : markov::pick_sources(g, options.sources, rng);
    report.sampled =
        markov::measure_sampled_mixing(g, sources, options.max_steps, options.laziness);
  }
  return report;
}

}  // namespace socmix::core
