#include "core/measurement.hpp"

#include <stdexcept>

#include "bench_harness/harness.hpp"
#include "linalg/sharded_walk_operator.hpp"
#include "linalg/walk_operator.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace socmix::core {

MixingReport measure_mixing(const graph::Graph& g, std::string name,
                            const MeasurementOptions& options) {
  SOCMIX_TRACE_SPAN("measure_mixing");
  SOCMIX_COUNTER_ADD("core.measurements", 1);
  MixingReport report;
  report.name = std::move(name);
  report.nodes = g.num_nodes();
  report.edges = g.num_edges();

  // Compressed containers (headless CSR): adjacency only exists as ADJC
  // blocks the shard pipelines decode, so reordering — which walks
  // neighbors up front — cannot run. Caught here so both phases fail with
  // the same message before any work starts.
  const bool headless = g.headless();
  if (headless && options.reorder != graph::ReorderMode::kNone) {
    throw std::invalid_argument{
        "measure_mixing: reordering needs in-memory adjacency; use --reorder "
        "none with compressed containers"};
  }

  if (options.spectral && g.num_nodes() > 0) {
    SOCMIX_TRACE_SPAN("phase.spectral");
    const util::Timer timer;
    // Lanczos runs on the relabeled CSR; the spectrum is label-invariant,
    // so nothing maps back. (Reorder cost is O(m log m) — noise next to
    // the iteration count, even though the sampled phase reorders again.)
    const graph::ReorderedGraph reordered = graph::reorder_graph(g, options.reorder);
    const graph::Graph& active = reordered.active(g);
    const std::uint32_t shards = graph::resolve_shard_count(
        options.sharded, active.memory_bytes(), active.num_nodes(),
        headless ? 3u : 2u);
    linalg::SpectrumResult spectrum;
    if (shards > 1 || headless) {
      // Shard geometry never changes an output bit (rows are independent
      // under spmv); this branch only bounds the CSR residency. Headless
      // graphs take it unconditionally: only the shard pipeline knows how
      // to materialize their adjacency.
      const linalg::ShardedWalkOperator op{
          active, graph::ShardPlan::balanced(active.offsets(), shards),
          options.laziness, reordered.identity() ? options.mapped : nullptr,
          options.io_mode};
      spectrum = linalg::slem_spectrum(op, options.lanczos);
    } else {
      const linalg::WalkOperator op{active, options.laziness};
      spectrum = linalg::slem_spectrum(op, options.lanczos);
    }
    report.spectral_ran = true;
    report.spectral_converged = spectrum.converged;
    report.slem = spectrum.slem;
    report.lambda2 = spectrum.lambda2;
    report.lambda_min = spectrum.lambda_min;
    report.lanczos_iterations = spectrum.iterations;
    report.spectral_seconds = timer.seconds();
    SOCMIX_GAUGE_SET("core.phase.spectral_seconds", report.spectral_seconds);
    bench::Harness::process().record("spectral/" + util::slugify(report.name),
                                     report.spectral_seconds);
  }

  if (options.sampled && g.num_nodes() > 0 &&
      (options.sources > 0 || options.all_sources)) {
    SOCMIX_TRACE_SPAN("phase.sampled");
    const util::Timer timer;
    util::Rng rng{options.seed};
    const auto sources = options.all_sources
                             ? markov::all_sources(g)
                             : markov::pick_sources(g, options.sources, rng);
    markov::SampledMixingOptions sampled_options;
    sampled_options.max_steps = options.max_steps;
    sampled_options.laziness = options.laziness;
    sampled_options.checkpoint = options.checkpoint;
    sampled_options.reorder = options.reorder;
    sampled_options.frontier = options.frontier;
    sampled_options.precision = options.precision;
    sampled_options.sharded = options.sharded;
    sampled_options.mapped = options.mapped;
    sampled_options.io_mode = options.io_mode;
    if (sampled_options.checkpoint.enabled() && sampled_options.checkpoint.name.empty()) {
      sampled_options.checkpoint.name = "mixing-" + util::slugify(report.name);
    }
    report.sampled = markov::measure_sampled_mixing(g, sources, sampled_options);
    report.sampled_seconds = timer.seconds();
    SOCMIX_GAUGE_SET("core.phase.sampled_seconds", report.sampled_seconds);
    bench::Harness::process().record("sampled/" + util::slugify(report.name),
                                     report.sampled_seconds);
  }
  return report;
}

}  // namespace socmix::core
