// High-level mixing-time measurement — the paper's contribution as an API.
//
// One call measures a social graph the way §3.3 prescribes:
//   1. extract the largest connected component,
//   2. compute the SLEM mu by deflated Lanczos and derive the Theorem-2
//      bounds on T(eps),
//   3. sample initial distributions and evolve them, producing per-source
//      TVD trajectories and their percentile aggregation.
//
// Example:
//   const auto report = core::measure_mixing(g, "Physics 1", {});
//   std::cout << report.slem << " "
//             << report.bounds().lower(0.1) << " "
//             << report.sampled->worst_mixing_time(0.1) << "\n";
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "graph/frontier.hpp"
#include "graph/graph.hpp"
#include "graph/reorder.hpp"
#include "linalg/lanczos.hpp"
#include "markov/mixing_time.hpp"

namespace socmix::core {

struct MeasurementOptions {
  /// Sampled-measurement sources (paper uses 1000); 0 disables sampling.
  std::size_t sources = 1000;
  /// Walk-length budget per source (paper plots up to 500).
  std::size_t max_steps = 500;
  /// Brute-force every vertex as a source (paper's mode for the physics
  /// graphs); overrides `sources`.
  bool all_sources = false;
  /// Lazy-walk parameter in [0, 1); 0 = the paper's simple walk.
  double laziness = 0.0;
  /// Spectral solve configuration.
  linalg::LanczosOptions lanczos;
  /// Whether to run the (cheap) spectral and (expensive) sampled parts.
  bool spectral = true;
  bool sampled = true;
  std::uint64_t seed = 42;
  /// Crash tolerance for the sampled sweep (dir empty = off): completed
  /// source blocks are snapshotted to checkpoint.dir and an interrupted
  /// run resumes bit-identically. When checkpoint.name is empty it is
  /// derived from the measurement name, so multi-dataset drivers sharing
  /// one --checkpoint-dir keep distinct snapshots.
  resilience::CheckpointOptions checkpoint;
  /// Vertex ordering both phases compute under (--reorder). The spectral
  /// operator and the sampled walks run on the relabeled CSR; eigenvalues
  /// are label-invariant and TVD scalars match identity ordering within
  /// summation-order tolerance, so reported results are ordering-agnostic.
  graph::ReorderMode reorder = graph::ReorderMode::kNone;
  /// Adaptive frontier phase of the sampled evolution (--frontier). While a
  /// walk's reachable set is small the evolver sweeps only those rows;
  /// results are bit-identical on or off — purely a speed knob.
  graph::FrontierPolicy frontier;
  /// Kernel precision of the sampled phase (--precision). f64 (default) is
  /// the exact-parity path; mixed halves the walk-state gather traffic by
  /// storing distributions as float32 while accumulating TVD in
  /// compensated float64 (per-step error bounded by
  /// linalg::simd::kMixedTvdBudget). The spectral phase always runs f64.
  linalg::simd::Precision precision = linalg::simd::Precision::kFloat64;
  /// Shard-at-a-time out-of-core evolution (--sharded auto|off|N). When
  /// the policy resolves to > 1 shards against the measured CSR, both
  /// phases sweep the graph one contiguous vertex shard at a time
  /// (spectral: ShardedWalkOperator under Lanczos; sampled:
  /// ShardedBatchedEvolver) — bit-identical to the dense engines for any
  /// shard count; with a mapped container the CSR residency stays near
  /// two shard windows.
  graph::ShardPolicy sharded;
  /// The mmap-backed .smxg container `g` was borrowed from (socmix
  /// --pack), or null. Enables the madvise windowing of the shard sweeps;
  /// must outlive the call. Ignored under a non-identity reordering,
  /// which materializes a CSR the mapping no longer backs. A compressed
  /// container (headless `g`) is mandatory, forces the sharded engines in
  /// both phases (the dense kernels need the absent neighbor array),
  /// disables the frontier phase, and requires --reorder none.
  const graph::sharded::MappedGraph* mapped = nullptr;
  /// Shard window staging discipline of both phases (--io-mode
  /// sync|prefetch). Prefetch overlaps shard k+1's page-in/decode with
  /// shard k's compute on a dedicated thread; results are bit-identical
  /// either way.
  linalg::IoMode io_mode = linalg::IoMode::kSync;
};

/// Everything the paper reports about one graph.
struct MixingReport {
  std::string name;
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;

  // Spectral results (valid when `spectral_ran`).
  bool spectral_ran = false;
  bool spectral_converged = false;
  double slem = 0.0;
  double lambda2 = 0.0;
  double lambda_min = 0.0;
  std::size_t lanczos_iterations = 0;

  // Sampled results (present when sampling ran).
  std::optional<markov::SampledMixing> sampled;

  // Phase wall-clock seconds, mirrored into the obs gauges
  // core.phase.spectral_seconds / core.phase.sampled_seconds — the single
  // source of truth drivers report timing from (no per-driver stopwatches).
  double spectral_seconds = 0.0;
  double sampled_seconds = 0.0;

  /// Theorem-2 bound evaluator for this graph's mu.
  [[nodiscard]] markov::SpectralBounds bounds() const noexcept { return {slem}; }

  /// Lower bound on T(eps) per eq. (4).
  [[nodiscard]] double lower_bound(double eps) const noexcept {
    return bounds().lower(eps);
  }

  /// Upper bound on T(eps) per eq. (4).
  [[nodiscard]] double upper_bound(double eps) const noexcept {
    return bounds().upper(eps, nodes);
  }
};

/// Measures `g` (assumed connected — run graph::largest_component first if
/// unsure; throws on isolated vertices).
[[nodiscard]] MixingReport measure_mixing(const graph::Graph& g, std::string name,
                                          const MeasurementOptions& options);

}  // namespace socmix::core
